package parmvn

import (
	"fmt"

	"repro/internal/mvn"
	"repro/internal/taskrt"
)

// Bounds is one integration box [a,b] of a batched MVN query.
type Bounds struct {
	A, B []float64
}

// MVNProbBatch computes Φn(a,b;0,Σ) for every query against the single
// covariance assembled from the kernel at locs. Σ is factorized once — from
// the session factor cache when warm — and the independent queries fan out
// across the task runtime, so a batch costs one factorization plus the
// parallel integrations. With a fixed configuration the results are
// identical to len(queries) sequential MVNProb calls.
func (s *Session) MVNProbBatch(locs []Point, kernel KernelSpec, queries []Bounds) ([]Result, error) {
	if err := validateQueries(len(locs), queries); err != nil {
		return nil, err
	}
	if err := s.validateTileSize(len(locs)); err != nil {
		return nil, err
	}
	f, err := s.factorForKernel(locs, kernel)
	if err != nil {
		return nil, err
	}
	return s.evalBatch(f, queries)
}

// MVNProbCovBatch is MVNProbBatch for an explicit covariance matrix given as
// rows; the factor is cached by matrix content.
func (s *Session) MVNProbCovBatch(sigma [][]float64, queries []Bounds) ([]Result, error) {
	m, err := denseFromRows(sigma)
	if err != nil {
		return nil, err
	}
	if err := validateQueries(m.Rows, queries); err != nil {
		return nil, err
	}
	if err := s.validateTileSize(m.Rows); err != nil {
		return nil, err
	}
	f, err := s.factorForSigma(m)
	if err != nil {
		return nil, err
	}
	return s.evalBatch(f, queries)
}

// validateLimits rejects mis-sized limit vectors before any assembly or
// factorization work is spent (the dimension is known from the inputs).
func validateLimits(n int, a, b []float64) error {
	if len(a) != n || len(b) != n {
		return fmt.Errorf("parmvn: limits length (%d,%d) != dimension %d", len(a), len(b), n)
	}
	return nil
}

// validateQueries is validateLimits over a batch.
func validateQueries(n int, queries []Bounds) error {
	for i, q := range queries {
		if err := validateLimits(n, q.A, q.B); err != nil {
			return fmt.Errorf("parmvn: query %d: %w", i, err)
		}
	}
	return nil
}

// evalBatch runs the pre-validated queries against one shared factor. Each
// query gets a fresh deterministic Options (its own default-seeded shift
// Rng), so result i is bit-identical to a standalone MVNProb with the same
// inputs regardless of batching or execution order.
func (s *Session) evalBatch(f mvn.Factor, queries []Bounds) ([]Result, error) {
	out := make([]Result, len(queries))
	if s.cfg.SequentialBatch || len(queries) <= 1 {
		for i, q := range queries {
			r := mvn.PMVN(s.rt, f, q.A, q.B, s.mvnOpts())
			out[i] = Result{Prob: r.Prob, StdErr: r.StdErr}
		}
		return s.finishBatch(out), nil
	}
	// Fan out with at most Workers queries in flight, bounding the working
	// memory while keeping the pool saturated. Each fanned query runs its
	// chain-blocked sweep inline on its own goroutine — one query per
	// worker, no per-query task graphs, allocation-free when warm — and
	// produces exactly the same result either way.
	opts := s.mvnOpts()
	opts.Inline = true
	taskrt.ForEachLimit(len(queries), s.cfg.Workers, func(i int) {
		r := mvn.PMVN(s.rt, f, queries[i].A, queries[i].B, opts)
		out[i] = Result{Prob: r.Prob, StdErr: r.StdErr}
	})
	return s.finishBatch(out), nil
}

// finishBatch attaches one shared scheduler-statistics snapshot to every
// result of the batch when the session collects stats.
func (s *Session) finishBatch(out []Result) []Result {
	if s.cfg.CollectStats {
		snap := s.rt.Snapshot()
		for i := range out {
			out[i].Stats = &snap
		}
	}
	return out
}
