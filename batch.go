package parmvn

import (
	"fmt"

	"repro/internal/mvn"
	"repro/internal/taskrt"
)

// Bounds is one integration box [a,b] of a batched MVN query.
type Bounds struct {
	A, B []float64
}

// optAt resolves the per-query opts of a batch: nil means every query is
// unconstrained, a single element is shared by all queries, and a
// len(queries) slice assigns opts query by query (validated up front).
//repro:noalloc
func optAt(opts []QueryOpts, i int) QueryOpts {
	switch len(opts) {
	case 0:
		return QueryOpts{}
	case 1:
		return opts[0]
	default:
		return opts[i]
	}
}

//repro:noalloc
func validateBatchOpts(opts []QueryOpts, nq int) error {
	if len(opts) > 1 && len(opts) != nq {
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: %d opts for %d queries (want 0, 1 or %d)", len(opts), nq, nq)
	}
	return nil
}

// MVNProbBatch computes Φn(a,b;0,Σ) for every query against the single
// covariance assembled from the kernel at locs. Σ is factorized once — from
// the session factor cache when warm — and the independent queries fan out
// across the task runtime, so a batch costs one factorization plus the
// parallel integrations. With a fixed configuration the results are
// identical to len(queries) sequential MVNProb calls.
func (s *Session) MVNProbBatch(locs []Point, kernel KernelSpec, queries []Bounds) ([]Result, error) {
	return s.probBatch(locs, kernel, 0, queries, nil)
}

// MVNProbBatchOpts is MVNProbBatch with per-query accuracy/latency budgets:
// opts may be nil (all unconstrained), a single element (shared by every
// query) or one element per query. Budgeted queries run the wave-structured
// early-stopping integration; unconstrained ones are bit-identical to
// MVNProbBatch.
func (s *Session) MVNProbBatchOpts(locs []Point, kernel KernelSpec, queries []Bounds, opts []QueryOpts) ([]Result, error) {
	return s.probBatch(locs, kernel, 0, queries, opts)
}

// MVTProbBatch is MVNProbBatch for the multivariate Student-t probability
// T_n(a,b;Σ,ν): one shared factorization, parallel queries, results
// identical to sequential MVTProb calls. The Cholesky factor depends only on
// the covariance, so MVN and MVT queries against the same locations and
// kernel share one cached factor across both batch entry points.
func (s *Session) MVTProbBatch(locs []Point, kernel KernelSpec, nu float64, queries []Bounds) ([]Result, error) {
	if err := validateNu(nu); err != nil {
		return nil, err
	}
	return s.probBatch(locs, kernel, nu, queries, nil)
}

// MVTProbBatchOpts is MVTProbBatch with per-query accuracy/latency budgets
// (see MVNProbBatchOpts for the opts conventions).
func (s *Session) MVTProbBatchOpts(locs []Point, kernel KernelSpec, nu float64, queries []Bounds, opts []QueryOpts) ([]Result, error) {
	if err := validateNu(nu); err != nil {
		return nil, err
	}
	return s.probBatch(locs, kernel, nu, queries, opts)
}

// probBatch is the shared kernel-covariance batch path (nu = 0 → MVN,
// nu > 0 → MVT).
func (s *Session) probBatch(locs []Point, kernel KernelSpec, nu float64, queries []Bounds, opts []QueryOpts) ([]Result, error) {
	empty, anyLive, err := validateQueries(len(locs), queries)
	if err != nil {
		return nil, err
	}
	if err := validateBatchOpts(opts, len(queries)); err != nil {
		return nil, err
	}
	if err := s.validateTileSize(len(locs)); err != nil {
		return nil, err
	}
	if !anyLive {
		// Every box is empty: all probabilities are exactly 0, so nothing is
		// assembled or factorized — same as the direct path query by query.
		if err := kernel.validate(); err != nil {
			return nil, err
		}
		return s.finishBatch(make([]Result, len(queries))), nil
	}
	f, err := s.factorForKernel(locs, kernel)
	if err != nil {
		return nil, err
	}
	return s.evalBatch(f, queries, empty, nu, opts)
}

// MVNProbCovBatch is MVNProbBatch for an explicit covariance matrix given as
// rows; the factor is cached by matrix content.
func (s *Session) MVNProbCovBatch(sigma [][]float64, queries []Bounds) ([]Result, error) {
	m, err := denseFromRows(sigma)
	if err != nil {
		return nil, err
	}
	empty, anyLive, err := validateQueries(m.Rows, queries)
	if err != nil {
		return nil, err
	}
	if err := s.validateTileSize(m.Rows); err != nil {
		return nil, err
	}
	if !anyLive {
		return s.finishBatch(make([]Result, len(queries))), nil
	}
	f, err := s.factorForSigma(m)
	if err != nil {
		return nil, err
	}
	return s.evalBatch(f, queries, empty, 0, nil)
}

// query evaluates one pre-validated box against the factor (nu = 0 → MVN).
//repro:noalloc
func (s *Session) query(f mvn.Factor, a, b []float64, nu float64, opts mvn.Options) Result {
	var r mvn.Result
	if nu > 0 {
		r = mvn.PMVT(s.rt, f, a, b, nu, opts)
	} else {
		r = mvn.PMVN(s.rt, f, a, b, opts)
	}
	return Result{
		Prob: r.Prob, StdErr: r.StdErr, RelErr: r.RelErr,
		Samples: r.Samples, Converged: r.Converged, Canceled: r.Canceled,
	}
}

// evalBatch runs the pre-validated queries against one shared factor. Each
// query gets a fresh deterministic Options (its own default-seeded shift
// Rng), so result i is bit-identical to a standalone MVNProb/MVTProb with
// the same inputs regardless of batching or execution order. Empty boxes
// short-circuit to probability 0 without integrating.
func (s *Session) evalBatch(f mvn.Factor, queries []Bounds, empty []bool, nu float64, qopts []QueryOpts) ([]Result, error) {
	out := make([]Result, len(queries))
	if s.cfg.SequentialBatch || len(queries) <= 1 {
		for i, q := range queries {
			if empty[i] {
				continue
			}
			out[i] = s.query(f, q.A, q.B, nu, optAt(qopts, i).apply(s.mvnOpts()))
		}
		return s.finishBatch(out), nil
	}
	// Fan out with at most Workers queries in flight, bounding the working
	// memory while keeping the pool saturated. Each fanned query runs its
	// chain-blocked sweep inline on its own goroutine — one query per
	// worker, no per-query task graphs, allocation-free when warm — and
	// produces exactly the same result either way.
	opts := s.mvnOpts()
	opts.Inline = true
	taskrt.ForEachLimit(len(queries), s.cfg.Workers, func(i int) {
		if empty[i] {
			return
		}
		out[i] = s.query(f, queries[i].A, queries[i].B, nu, optAt(qopts, i).apply(opts))
	})
	return s.finishBatch(out), nil
}

// finishBatch attaches one shared scheduler-statistics snapshot to every
// result of the batch when the session collects stats.
func (s *Session) finishBatch(out []Result) []Result {
	if s.cfg.CollectStats {
		snap := s.rt.Snapshot()
		for i := range out {
			out[i].Stats = &snap
		}
	}
	return out
}
