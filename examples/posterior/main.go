// Posterior-update example: the full Bayesian workflow of the paper's
// synthetic experiments (equations 7–8). A latent field is observed at a
// few noisy locations; the posterior covariance and mean then drive
// confidence-region detection.
//
// Run with:
//
//	go run ./examples/posterior
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const (
		side = 16
		tau  = 0.5 // observation noise sd, as in the paper
		u    = 0.0
		conf = 0.9
	)
	locs := parmvn.Grid(side, side)
	n := len(locs)
	kernel := parmvn.KernelSpec{Family: "exponential", Range: 0.1}
	sigma := parmvn.CovarianceMatrix(locs, kernel)

	// Simulate a "truth" and noisy observations at 25% of the locations.
	// (Any measurement vector works; we synthesize one from the prior by
	// a simple moving-average surrogate to keep the example self-contained.)
	rng := rand.New(rand.NewSource(3))
	truth := make([]float64, n)
	for i, p := range locs {
		truth[i] = 1.2 - 2.4*p.X + 0.3*rng.NormFloat64()
	}
	nObs := n / 4
	obsIdx := rng.Perm(n)[:nObs]
	y := make([]float64, nObs)
	for i, idx := range obsIdx {
		y[i] = truth[idx] + tau*rng.NormFloat64()
	}

	// Equations 7–8: posterior covariance and mean.
	mu := make([]float64, n) // zero prior mean
	postCov, postMu, err := parmvn.Posterior(sigma, mu, obsIdx, y, tau*tau)
	if err != nil {
		panic(err)
	}

	s := parmvn.NewSession(parmvn.Config{QMCSize: 3000, TileSize: 32})
	defer s.Close()
	exc, err := s.DetectRegionCov(postCov, postMu, u, conf, 12)
	if err != nil {
		panic(err)
	}
	fmt.Printf("posterior confidence region (u=%g, conf=%g): %d of %d locations\n",
		u, conf, len(exc.Region), n)
	mask := exc.InRegion(n)
	obs := make(map[int]bool, nObs)
	for _, i := range obsIdx {
		obs[i] = true
	}
	fmt.Println("legend: # region, o observed, @ both, . outside")
	for j := side - 1; j >= 0; j-- {
		for i := 0; i < side; i++ {
			idx := j*side + i
			switch {
			case mask[idx] && obs[idx]:
				fmt.Print("@")
			case mask[idx]:
				fmt.Print("#")
			case obs[idx]:
				fmt.Print("o")
			default:
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
}
