// Example serve is a minimal client for the mvnserve HTTP API: it posts one
// MVN and one MVT query for a Gaussian field on a grid, then reads the
// server's statistics. Start a server first:
//
//	go run ./cmd/mvnserve -addr :8080 -method tlr
//	go run ./examples/serve -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
)

func post(base, path string, req any) (map[string]any, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %v (field %v)", resp.Status, out["error"], out["field"])
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "mvnserve base URL")
	flag.Parse()

	// P(X_i > -1 ∀i) for an exponential-kernel field on a 20×20 grid.
	query := map[string]any{
		"grid":   map[string]int{"nx": 20, "ny": 20},
		"kernel": map[string]any{"family": "exponential", "range": 0.1},
		"lower":  -1,
	}
	mvn, err := post(*addr, "/v1/mvnprob", query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
	fmt.Printf("MVN  P = %.6g  (n=%v, %v, %.2fms)\n",
		mvn["prob"], mvn["n"], mvn["method"], mvn["elapsed_ms"])

	// The same box under a Student-t field with ν = 7 — the warm factor is
	// reused, so this query skips the factorization entirely.
	query["nu"] = 7
	mvt, err := post(*addr, "/v1/mvtprob", query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
	fmt.Printf("MVT  P = %.6g  (ν=7, %.2fms)\n", mvt["prob"], mvt["elapsed_ms"])

	resp, err := http.Get(*addr + "/stats")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve example:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats)
	fmt.Printf("stats: %v requests, cache %v hit / %v miss, %v coalesced\n",
		stats["requests"], stats["cache_hits"], stats["cache_misses"], stats["coalesced"])
}
