// Excursion-set example: detect the confidence region where a Gaussian
// field exceeds a threshold with joint probability ≥ 95%, and contrast it
// with the (misleading) marginal-probability region — the comparison the
// paper's Figure 1 makes.
//
// Run with:
//
//	go run ./examples/excursion
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		side = 20
		u    = 0.0  // threshold
		conf = 0.95 // confidence level 1-α
	)
	locs := parmvn.Grid(side, side)
	n := len(locs)

	// A mean surface that is high in the north-west corner and sinks toward
	// the south-east, over strongly correlated terrain.
	mean := make([]float64, n)
	for i, p := range locs {
		mean[i] = 3.2 - 4.5*p.X - 2.0*p.Y
	}
	kernel := parmvn.KernelSpec{Family: "exponential", Range: 0.234} // strong correlation

	s := parmvn.NewSession(parmvn.Config{QMCSize: 4000, TileSize: 50})
	defer s.Close()
	exc, err := s.DetectRegion(locs, kernel, mean, u, conf, 16)
	if err != nil {
		panic(err)
	}

	marginalOnly := 0
	for _, p := range exc.Marginal {
		if p >= conf {
			marginalOnly++
		}
	}
	fmt.Printf("joint confidence region: %d locations; marginal region: %d locations\n",
		len(exc.Region), marginalOnly)
	fmt.Println("legend: # joint region, + marginal-only, . outside")
	mask := exc.InRegion(n)
	for j := side - 1; j >= 0; j-- {
		for i := 0; i < side; i++ {
			idx := j*side + i
			switch {
			case mask[idx]:
				fmt.Print("#")
			case exc.Marginal[idx] >= conf:
				fmt.Print("+")
			default:
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nconfidence function along the first locations of the ordering:")
	for k := 0; k < 8 && k < len(exc.Order); k++ {
		loc := exc.Order[k]
		fmt.Printf("  rank %2d: location %3d  F = %.4f  (marginal %.4f)\n",
			k+1, loc, exc.F[loc], exc.Marginal[loc])
	}
}
