// Wind-farm siting example: the paper's motivating application. Generate
// the synthetic Saudi-Arabia wind dataset, standardize a summer day, and
// find the locations whose wind speed exceeds 4 m/s with 95% confidence —
// candidate wind-farm sites — comparing the dense and TLR pipelines.
//
// Run with:
//
//	go run ./examples/windfarm
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/wind"
)

func main() {
	const (
		nx, ny = 16, 12
		days   = 90
		u      = 4.0  // m/s threshold
		conf   = 0.95 // confidence level
	)
	ds, err := wind.Generate(wind.Config{Nx: nx, Ny: ny, Days: days, Seed: 11})
	if err != nil {
		panic(err)
	}
	day := days * 2 / 3
	_, mean, sd := ds.Standardize(day)
	n := ds.Geom.Len()
	fmt.Printf("wind dataset: %d locations, %d days; detecting P(wind > %g m/s) ≥ %g\n", n, days, u, conf)

	// Spatial correlation of the anomaly (the generating Matérn model).
	locs := parmvn.Grid(nx, ny)
	corr := parmvn.CovarianceMatrix(locs, parmvn.KernelSpec{
		Family: "matern", Range: 0.12, Nu: 1.43391, Nugget: 1e-6,
	})
	// Scale to the data covariance: Σij = sd_i·sd_j·ρij.
	sigma := make([][]float64, n)
	for i := range sigma {
		sigma[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			sigma[i][j] = sd[i] * sd[j] * corr[i][j]
		}
	}

	for _, method := range []parmvn.Method{parmvn.Dense, parmvn.TLR} {
		s := parmvn.NewSession(parmvn.Config{
			Method: method, TileSize: 24, QMCSize: 3000, TLRTol: 1e-4,
		})
		start := time.Now()
		exc, err := s.DetectRegionCov(sigma, mean, u, conf, 12)
		elapsed := time.Since(start)
		s.Close()
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%s: %d candidate sites in %.2fs\n", method, len(exc.Region), elapsed.Seconds())
		mask := exc.InRegion(n)
		for j := ny - 1; j >= 0; j-- {
			for i := 0; i < nx; i++ {
				if mask[j*nx+i] {
					fmt.Print("#")
				} else {
					fmt.Print(".")
				}
			}
			fmt.Println()
		}
	}
}
