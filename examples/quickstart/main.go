// Quickstart: compute one high-dimensional multivariate normal probability
// with the tiled Separation-of-Variables algorithm, dense and TLR.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A Gaussian field on a 16×16 grid (dimension 256) with exponential
	// correlation — the paper's "medium correlation" setting.
	locs := parmvn.Grid(16, 16)
	kernel := parmvn.KernelSpec{Family: "exponential", Range: 0.1}

	// Probability that the whole field stays inside the box [-3, 3]²⁵⁶ —
	// around one half, a regime where QMC accuracy is easy to inspect.
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -3
		b[i] = 3
	}

	for _, method := range []parmvn.Method{parmvn.Dense, parmvn.TLR} {
		s := parmvn.NewSession(parmvn.Config{
			Method:     method,
			TileSize:   32,
			QMCSize:    4000,
			Replicates: 3, // randomized QMC replicates -> error estimate
			TLRTol:     1e-4,
		})
		res, err := s.MVNProb(locs, kernel, a, b)
		s.Close()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s  P = %.6g  ± %.1e\n", method, res.Prob, res.StdErr)
	}
}
