// Student-t example: compare multivariate normal and multivariate t
// probabilities on the same spatial box — the heavy-tail correction matters
// when field amplitudes are t-distributed (e.g. fields with uncertain
// variance), and the MVT extension computes it with the same tiled SOV
// machinery.
//
// Run with:
//
//	go run ./examples/mvt
package main

import (
	"fmt"

	"repro"
)

func main() {
	locs := parmvn.Grid(10, 10)
	kernel := parmvn.KernelSpec{Family: "matern", Range: 0.15, Nu: 1.5}
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = -2, 2
	}

	s := parmvn.NewSession(parmvn.Config{QMCSize: 8000, Replicates: 3, TileSize: 25})
	defer s.Close()

	normal, err := s.MVNProb(locs, kernel, a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(all 100 components in [-2,2]):\n")
	fmt.Printf("  normal        %.5f ± %.1e\n", normal.Prob, normal.StdErr)
	for _, nu := range []float64{3, 8, 30, 1000} {
		res, err := s.MVTProb(locs, kernel, nu, a, b)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  t (ν = %5.0f) %.5f ± %.1e\n", nu, res.Prob, res.StdErr)
	}
	fmt.Println("\nAs ν grows the t probability converges to the normal one;")
	fmt.Println("small ν couples all components through the shared χ² scale.")
}
