// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// EXPERIMENTS.md). Each benchmark exercises the same code path as the
// corresponding experiment at a laptop-sized workload; the cmd/figures tool
// runs the full sweeps and prints the tables.
package parmvn

import (
	"io"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cov"
	"repro/internal/excursion"
	"repro/internal/figures"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
	"repro/internal/wind"
)

// benchCorr builds the medium-correlation exponential covariance on a
// side×side grid.
func benchCorr(side int) *linalg.Matrix {
	g := geo.RegularGrid(side, side)
	return cov.Matrix(g, &cov.Exponential{Sigma2: 1, Range: 0.1})
}

func benchLimits(n int, lo float64) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = lo
		b[i] = math.Inf(1)
	}
	return
}

// BenchmarkFig1CRD is Figure 1's unit of work: one confidence-region
// detection (bisection over PMVN prefix probabilities) on a posterior-like
// field, dense factorization.
func BenchmarkFig1CRD(b *testing.B) {
	sigma := benchCorr(16) // n=256
	corr, sd := excursion.CorrelationFromCovariance(sigma)
	mean := make([]float64, 256)
	for i := range mean {
		mean[i] = 2.2 - 0.01*float64(i)
	}
	rt := taskrt.New(4)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tile.FromDense(corr, 64)
		if err := tiledalg.Potrf(rt, t); err != nil {
			b.Fatal(err)
		}
		c, err := excursion.NewComputer(rt, mvn.NewDenseFactor(t), mean, sd, 0, mvn.Options{N: 1000})
		if err != nil {
			b.Fatal(err)
		}
		if reg := c.Region(0.9); len(reg) == 0 {
			b.Fatal("empty region")
		}
	}
}

// BenchmarkFig2Wind is the wind application's unit of work: standardize the
// synthetic Saudi dataset and detect the 4 m/s 95% region (dense).
func BenchmarkFig2Wind(b *testing.B) {
	ds, err := wind.Generate(wind.Config{Nx: 14, Ny: 12, Days: 60, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	_, mean, sd := ds.Standardize(40)
	g := geo.RegularGrid(14, 12)
	corr := cov.Matrix(g, &cov.Nugget{Kernel: cov.NewMatern(1, 0.12, 1.43391), Tau2: 1e-6})
	rt := taskrt.New(4)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tile.FromDense(corr, 42)
		if err := tiledalg.Potrf(rt, t); err != nil {
			b.Fatal(err)
		}
		c, err := excursion.NewComputer(rt, mvn.NewDenseFactor(t), mean, sd, 4.0, mvn.Options{N: 1000})
		if err != nil {
			b.Fatal(err)
		}
		c.Region(0.95)
	}
}

// BenchmarkFig3DenseTLRDiff measures the TLR side of the wind comparison:
// the same detection through a TLR factorization at the paper's 1e-4
// accuracy.
func BenchmarkFig3DenseTLRDiff(b *testing.B) {
	ds, err := wind.Generate(wind.Config{Nx: 14, Ny: 12, Days: 60, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	_, mean, sd := ds.Standardize(40)
	g := geo.RegularGrid(14, 12)
	corr := cov.Matrix(g, &cov.Nugget{Kernel: cov.NewMatern(1, 0.12, 1.43391), Tau2: 1e-6})
	rt := taskrt.New(4)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := tlr.CompressSPD(tile.FromDense(corr, 42), 1e-4, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := tlr.Potrf(rt, a); err != nil {
			b.Fatal(err)
		}
		c, err := excursion.NewComputer(rt, mvn.NewTLRFactor(a), mean, sd, 4.0, mvn.Options{N: 1000})
		if err != nil {
			b.Fatal(err)
		}
		c.Region(0.95)
	}
}

// oneMVN runs Figure 4's unit of work: Cholesky + one PMVN integration.
func oneMVN(b *testing.B, side, qmcN int, useTLR bool) {
	b.Helper()
	sigma := benchCorr(side)
	n := side * side
	a, up := benchLimits(n, -0.5)
	ts := max(25, n/10)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	var pre *tlr.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if useTLR {
			b.StopTimer() // compression = pmvn_init, untimed as in the paper
			var err error
			pre, _, err = func() (*tlr.Matrix, float64, error) {
				m, err := tlr.CompressSPD(tile.FromDense(sigma, ts), 1e-3, 0)
				return m, 0, err
			}()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := tlr.Potrf(rt, pre); err != nil {
				b.Fatal(err)
			}
			mvn.PMVN(rt, mvn.NewTLRFactor(pre), a, up, mvn.Options{N: qmcN})
		} else {
			t := tile.FromDense(sigma, ts)
			if err := tiledalg.Potrf(rt, t); err != nil {
				b.Fatal(err)
			}
			mvn.PMVN(rt, mvn.NewDenseFactor(t), a, up, mvn.Options{N: qmcN})
		}
	}
}

// BenchmarkFig4 sweeps the Figure 4 grid at bench scale: dimension ×
// QMC size × method.
func BenchmarkFig4(b *testing.B) {
	for _, side := range []int{20, 30} {
		for _, qn := range []int{100, 1000} {
			for _, method := range []string{"dense", "tlr"} {
				name := "n" + strconv.Itoa(side*side) + "/N" + strconv.Itoa(qn) + "/" + method
				b.Run(name, func(b *testing.B) {
					oneMVN(b, side, qn, method == "tlr")
				})
			}
		}
	}
}

// BenchmarkTable2Speedup reports the TLR-over-dense speedup of one MVN
// integration as a custom metric (the paper's Table II entry).
func BenchmarkTable2Speedup(b *testing.B) {
	side, qn := 30, 1000
	sigma := benchCorr(side)
	n := side * side
	a, up := benchLimits(n, -0.5)
	ts := n / 10
	rt := taskrt.New(4)
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		denseSec := benchSeconds(func() {
			t := tile.FromDense(sigma, ts)
			if err := tiledalg.Potrf(rt, t); err != nil {
				b.Fatal(err)
			}
			mvn.PMVN(rt, mvn.NewDenseFactor(t), a, up, mvn.Options{N: qn})
		})
		pre, err := tlr.CompressSPD(tile.FromDense(sigma, ts), 1e-3, 0)
		if err != nil {
			b.Fatal(err)
		}
		tlrSec := benchSeconds(func() {
			if err := tlr.Potrf(rt, pre); err != nil {
				b.Fatal(err)
			}
			mvn.PMVN(rt, mvn.NewTLRFactor(pre), a, up, mvn.Options{N: qn})
		})
		b.ReportMetric(denseSec/tlrSec, "speedupX")
	}
}

// BenchmarkFig5Compression measures the TLR compression of a 20×20-tile
// covariance at accuracy 1e-3 (the matrix behind the rank maps).
func BenchmarkFig5Compression(b *testing.B) {
	sigma := benchCorr(40) // 1600², ts=80: 20×20 tiles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := tlr.CompressSPD(tile.FromDense(sigma, 80), 1e-3, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, mean := a.RankStats(); mean <= 0 {
			b.Fatal("no compression")
		}
	}
}

// BenchmarkFig6MCValidation times the Monte Carlo validation pass.
func BenchmarkFig6MCValidation(b *testing.B) {
	sigma := benchCorr(20)
	l, err := linalg.Cholesky(sigma)
	if err != nil {
		b.Fatal(err)
	}
	n := 400
	mean := make([]float64, n)
	sd := make([]float64, n)
	region := make([]int, 40)
	for i := range sd {
		sd[i] = 1
		mean[i] = 0.5
	}
	for i := range region {
		region[i] = i
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		excursion.MCValidate(region, mean, sd, 0, l, 2000, rng)
	}
}

// BenchmarkFig7ClusterSim runs one simulated distributed configuration of
// Figure 7 per iteration (dense, 128 nodes, n = 360,000).
func BenchmarkFig7ClusterSim(b *testing.B) {
	w := cluster.Workload{N: 360000, TileSize: 980, QMC: 10000, SampleTS: 500, MeanRank: 145, PropFlopScale: 2.5}
	for i := 0; i < b.N; i++ {
		chol, pmvn := cluster.MVNMakespan(cluster.ShaheenII(128), w)
		if chol <= 0 || pmvn <= 0 {
			b.Fatal("bad makespan")
		}
	}
}

// BenchmarkTable3Speedup reports the simulated distributed TLR speedup as a
// custom metric (the paper's Table III entry for 128 nodes).
func BenchmarkTable3Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wd := cluster.Workload{N: 360000, TileSize: 980, QMC: 10000, SampleTS: 500, MeanRank: 145, PropFlopScale: 2.5}
		cd, pd := cluster.MVNMakespan(cluster.ShaheenII(128), wd)
		wd.TLR = true
		ct, pt := cluster.MVNMakespan(cluster.ShaheenII(128), wd)
		b.ReportMetric((cd+pd)/(ct+pt), "speedupX")
	}
}

// BenchmarkFigureHarnessFig7 runs the full Figure 7 harness (quick mode) —
// the slowest always-on path of cmd/figures.
func BenchmarkFigureHarnessFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig7(io.Discard, figures.Config{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeconds(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
