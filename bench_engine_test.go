// Benchmarks for the unified factorization engine: the adaptive per-tile
// representation against the uniform TLR layout on the same covariance, each
// measured as one cold factorization plus one MVN query (cache disabled, so
// every iteration pays assembly, representation choice and Cholesky).
//
//	go test -bench BenchmarkAdaptiveVsTLR -benchtime 3x
//
// Results are recorded in BENCH_engine.json to seed the perf trajectory.
package parmvn

import (
	"math"
	"testing"
)

func engineBenchInputs() ([]Point, KernelSpec, []float64, []float64) {
	locs := Grid(24, 24) // n = 576
	kernel := KernelSpec{Family: "matern", Range: 0.2, Nu: 2.5, Nugget: 0.05}
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = math.Inf(1)
	}
	return locs, kernel, a, b
}

func benchMethod(b *testing.B, method Method) {
	locs, kernel, lo, hi := engineBenchInputs()
	s := NewSession(Config{
		Method: method, TileSize: 48, QMCSize: 500,
		TLRTol: 1e-4, NoFactorCache: true, AdaptiveF32Norm: 0.5,
	})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MVNProb(locs, kernel, lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveVsTLR compares the engine's adaptive representation
// policy with the uniform TLR layout (and the dense baseline) end to end.
func BenchmarkAdaptiveVsTLR(b *testing.B) {
	b.Run("Adaptive", func(b *testing.B) { benchMethod(b, MethodAdaptive) })
	b.Run("TLR", func(b *testing.B) { benchMethod(b, TLR) })
	b.Run("Dense", func(b *testing.B) { benchMethod(b, Dense) })
}
