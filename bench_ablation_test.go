// Ablation benchmarks for the design choices DESIGN.md calls out: tile
// size, sample-tile width, QMC generator, variable reordering, TLR rank cap
// and the mixed-precision band. Custom metrics report accuracy alongside
// time where the trade-off is accuracy-vs-speed.
package parmvn

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mixprec"
	"repro/internal/mvn"
	"repro/internal/qmc"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

// BenchmarkAblationTileSize sweeps the tile size of one dense MVN
// integration at n=900, N=500: too-small tiles pay scheduling overhead,
// too-large tiles lose pipeline parallelism.
func BenchmarkAblationTileSize(b *testing.B) {
	sigma := benchCorr(30)
	a, up := benchLimits(900, -0.5)
	for _, ts := range []int{25, 45, 90, 180, 450} {
		b.Run("ts"+strconv.Itoa(ts), func(b *testing.B) {
			rt := taskrt.New(4)
			defer rt.Shutdown()
			for i := 0; i < b.N; i++ {
				t := tile.FromDense(sigma, ts)
				if err := tiledalg.Potrf(rt, t); err != nil {
					b.Fatal(err)
				}
				mvn.PMVN(rt, mvn.NewDenseFactor(t), a, up, mvn.Options{N: 500})
			}
		})
	}
}

// BenchmarkAblationSampleTile sweeps the chains-per-tile-column width of
// the QMC sampling axis.
func BenchmarkAblationSampleTile(b *testing.B) {
	sigma := benchCorr(30)
	a, up := benchLimits(900, -0.5)
	rt := taskrt.New(4)
	defer rt.Shutdown()
	t := tile.FromDense(sigma, 90)
	if err := tiledalg.Potrf(rt, t); err != nil {
		b.Fatal(err)
	}
	f := mvn.NewDenseFactor(t)
	for _, mc := range []int{25, 100, 250, 1000} {
		b.Run("mc"+strconv.Itoa(mc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mvn.PMVN(rt, f, a, up, mvn.Options{N: 1000, SampleTile: mc})
			}
		})
	}
}

// BenchmarkAblationQMCGenerator compares the Richtmyer lattice, Halton and
// plain pseudo-MC on the same integration, reporting the absolute error
// against a converged reference as a metric.
func BenchmarkAblationQMCGenerator(b *testing.B) {
	sigma := benchCorr(16) // n=256
	// Box [-3,3]^256 keeps the probability near 1/2 so relative errors are
	// meaningful.
	a := make([]float64, 256)
	up := make([]float64, 256)
	for i := range a {
		a[i], up[i] = -3, 3
	}
	rt := taskrt.New(4)
	defer rt.Shutdown()
	t := tile.FromDense(sigma, 64)
	if err := tiledalg.Potrf(rt, t); err != nil {
		b.Fatal(err)
	}
	f := mvn.NewDenseFactor(t)
	// Converged reference: Richtmyer with a large N.
	ref := mvn.PMVN(rt, f, a, up, mvn.Options{N: 200000}).Prob
	gens := map[string]func(dim int, shift []float64) qmc.Generator{
		"richtmyer": func(d int, s []float64) qmc.Generator { return qmc.NewRichtmyerShifted(d, s) },
		"halton":    func(d int, s []float64) qmc.Generator { return qmc.NewHalton(d, s) },
		"pseudo":    func(d int, s []float64) qmc.Generator { return qmc.NewPseudo(d, 42) },
	}
	for name, gen := range gens {
		b.Run(name, func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				res := mvn.PMVN(rt, f, a, up, mvn.Options{N: 2000, NewGen: gen})
				errSum += math.Abs(res.Prob - ref)
			}
			b.ReportMetric(errSum/float64(b.N)/math.Max(ref, 1e-300), "relerr")
		})
	}
}

// BenchmarkAblationReordering reports the randomized-QMC relative spread
// with and without the Genz–Bretz univariate reordering.
func BenchmarkAblationReordering(b *testing.B) {
	side := 5
	sigma := benchCorr(side)
	n := side * side
	a := make([]float64, n)
	up := make([]float64, n)
	for i := range a {
		a[i] = -3 + 4*float64(i%7)/6
		up[i] = math.Inf(1)
	}
	perm := mvn.UnivariateReorder(a, up, sigma)
	ap, bp, sp := mvn.PermuteProblem(a, up, sigma, perm)
	for _, tc := range []struct {
		name   string
		av, bv []float64
		s      *linalg.Matrix
	}{{"original", a, up, sigma}, {"reordered", ap, bp, sp}} {
		b.Run(tc.name, func(b *testing.B) {
			rt := taskrt.New(2)
			defer rt.Shutdown()
			t := tile.FromDense(tc.s, 13)
			if err := tiledalg.Potrf(rt, t); err != nil {
				b.Fatal(err)
			}
			f := mvn.NewDenseFactor(t)
			var rel float64
			for i := 0; i < b.N; i++ {
				res := mvn.PMVN(rt, f, tc.av, tc.bv, mvn.Options{N: 500, Replicates: 8})
				rel += res.StdErr / math.Max(res.Prob, 1e-300)
			}
			b.ReportMetric(rel/float64(b.N), "relstderr")
		})
	}
}

// BenchmarkAblationTLRRankCap sweeps the TLR maximum-rank cap, reporting
// the factorization residual as a metric: the accuracy/speed dial the paper
// turns with its compression threshold.
func BenchmarkAblationTLRRankCap(b *testing.B) {
	sigma := benchCorr(30)
	want, err := linalg.Cholesky(sigma)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{4, 8, 16, 45} {
		b.Run("cap"+strconv.Itoa(cap), func(b *testing.B) {
			rt := taskrt.New(2)
			defer rt.Shutdown()
			var resid float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a, err := tlr.CompressSPD(tile.FromDense(sigma, 90), 1e-9, cap)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := tlr.Potrf(rt, a); err != nil {
					b.Fatal(err)
				}
				resid += a.ToDense().MaxAbsDiff(want)
			}
			b.ReportMetric(resid/float64(b.N), "maxerr")
		})
	}
}

// BenchmarkAblationMixedPrecisionBand sweeps the double-precision band of
// the mixed-precision Cholesky, reporting the factor error vs f64.
func BenchmarkAblationMixedPrecisionBand(b *testing.B) {
	sigma := benchCorr(24) // n=576, 8 tiles of 72
	want, err := linalg.Cholesky(sigma)
	if err != nil {
		b.Fatal(err)
	}
	for _, band := range []int{0, 1, 3, 7} {
		b.Run("band"+strconv.Itoa(band), func(b *testing.B) {
			rt := taskrt.New(2)
			defer rt.Shutdown()
			var errSum float64
			for i := 0; i < b.N; i++ {
				f, err := mixprec.Potrf(rt, tile.FromDense(sigma, 72), band)
				if err != nil {
					b.Fatal(err)
				}
				errSum += f.ToDense().MaxAbsDiff(want)
			}
			b.ReportMetric(errSum/float64(b.N), "maxerr")
		})
	}
}

// BenchmarkAblationWorkers sweeps the worker-pool size of the tiled
// Cholesky (informative on multicore hosts; a single-core host shows the
// scheduling overhead alone).
func BenchmarkAblationWorkers(b *testing.B) {
	sigma := benchCorr(30)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("w"+strconv.Itoa(w), func(b *testing.B) {
			rt := taskrt.New(w)
			defer rt.Shutdown()
			for i := 0; i < b.N; i++ {
				t := tile.FromDense(sigma, 45)
				if err := tiledalg.Potrf(rt, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
