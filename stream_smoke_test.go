package parmvn

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// streamSmokeHeapCeiling is the checked-in peak-heap budget for the n=4096
// streaming TLR factorization below. The dense covariance alone would be
// 8·4096² = 128 MiB; the streaming path (kernel-direct ACA assembly fused
// into the task graph, windowed submission) must stay far under it. The
// ceiling carries slack over the observed peak so kernel-level churn does
// not flake CI, while still catching any regression that re-materializes
// the dense matrix.
const streamSmokeHeapCeiling = 64 << 20

// TestStreamingMemorySmoke is the CI guard for the out-of-core-shaped
// factorization path: build the TLR factor for n = 4096 directly from the
// kernel while sampling the Go heap, and require the peak to stay under the
// checked-in ceiling. Runs in short mode by design.
func TestStreamingMemorySmoke(t *testing.T) {
	const side = 64 // n = 4096
	s := NewSession(Config{Method: TLR, TileSize: 256, TLRTol: 1e-4, QMCSize: 200, Replicates: 1})
	defer s.Close()
	locs := Grid(side, side)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.1}

	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	fp, err := s.FactorFootprint(locs, kernel)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}

	if fp.LowRank == 0 {
		t.Errorf("no low-rank tiles in the streamed TLR factor: %+v", fp)
	}
	denseLower := 8 * int64(n) * int64(n+s.Config().TileSize) / 2
	if fp.Bytes >= denseLower/2 {
		t.Errorf("factor footprint %d bytes, want well under the %d-byte dense lower triangle", fp.Bytes, denseLower)
	}
	got := peak.Load()
	t.Logf("peak HeapAlloc %.1f MiB (ceiling %d MiB), factor %.1f MiB, mix %d/%d/%d, evicted %d",
		float64(got)/(1<<20), streamSmokeHeapCeiling>>20,
		float64(fp.Bytes)/(1<<20), fp.Dense64, fp.Dense32, fp.LowRank, fp.TilesEvicted)
	if raceEnabled {
		// The race detector's shadow memory and its intentional sync.Pool
		// put-dropping inflate the heap; the ceiling is only meaningful on
		// uninstrumented builds.
		return
	}
	if got > streamSmokeHeapCeiling {
		t.Errorf("peak HeapAlloc %d exceeds the streaming ceiling %d", got, streamSmokeHeapCeiling)
	}
}
