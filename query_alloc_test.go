package parmvn

import (
	"hash/fnv"
	"math"
	"runtime/debug"
	"testing"
	"time"
)

// TestWarmQueryZeroAllocs pins the warm serving path: once the factor cache
// holds the Cholesky factor, a whole MVNProb — content hash, cache hit,
// pooled chain-blocked integration — performs zero heap allocations. A
// single worker forces the inline sweep (the same evaluation the batch
// fan-out runs per query); GC is paused so sync.Pool contents survive the
// measurement.
func TestWarmQueryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	s := NewSession(Config{Workers: 1, TileSize: 16, QMCSize: 200})
	defer s.Close()
	locs := Grid(8, 8)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.2}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = math.Inf(1)
	}
	warm := func() {
		if _, err := s.MVNProb(locs, kernel, a, b); err != nil {
			t.Fatal(err)
		}
	}
	warm() // factorize once; later calls hit the cache
	warm() // settle the workspace pools
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("warm MVNProb allocated %.1f times per query, want 0", allocs)
	}
}

// TestWarmQueryZeroAllocsEarlyStop: a warm budgeted query — accuracy target
// plus deadline, routed through the wave-structured early-stopping
// integration — must also be allocation-free: the wave state, the pooled
// shifted generators and the replicate accumulators all come from pools.
func TestWarmQueryZeroAllocsEarlyStop(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	s := NewSession(Config{Workers: 1, TileSize: 16, QMCSize: 200})
	defer s.Close()
	locs := Grid(8, 8)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.2}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = math.Inf(1)
	}
	opts := QueryOpts{MaxRelErr: 1e-2, Budget: time.Second}
	warm := func() {
		if _, err := s.MVNProbOpts(locs, kernel, a, b, opts); err != nil {
			t.Fatal(err)
		}
	}
	warm() // factorize once; later calls hit the cache
	warm() // settle the workspace and wave-state pools
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("warm budgeted MVNProbOpts allocated %.1f times per query, want 0", allocs)
	}
}

// TestWarmQueryZeroAllocsSweepF32: the f32 sweep's shadow factor is built
// lazily on the first query; once it exists, the warm path — one atomic
// load plus the pooled f32 conditioning buffers — must also be
// allocation-free.
func TestWarmQueryZeroAllocsSweepF32(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	s := NewSession(Config{Workers: 1, TileSize: 16, QMCSize: 200, SweepF32: true})
	defer s.Close()
	locs := Grid(8, 8)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.2}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = math.Inf(1)
	}
	warm := func() {
		if _, err := s.MVNProb(locs, kernel, a, b); err != nil {
			t.Fatal(err)
		}
	}
	warm() // factorize once and build the f32 shadow
	warm() // settle the workspace pools
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("warm f32-sweep MVNProb allocated %.1f times per query, want 0", allocs)
	}
}

// TestWarmMVTQueryZeroAllocs: the Student-t path shares the pooled sweep
// (plus its per-lane χ² scales) and must stay allocation-free too.
func TestWarmMVTQueryZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	s := NewSession(Config{Workers: 1, TileSize: 16, QMCSize: 200})
	defer s.Close()
	locs := Grid(6, 6)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.2}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1.5
		b[i] = 1
	}
	warm := func() {
		if _, err := s.MVTProb(locs, kernel, 5, a, b); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(20, warm); allocs != 0 {
		t.Errorf("warm MVTProb allocated %.1f times per query, want 0", allocs)
	}
}

// TestFNV128aMatchesStdlib pins the inline allocation-free FNV-1a/128
// implementation the cache keys use against hash/fnv byte for byte.
func TestFNV128aMatchesStdlib(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, 1e300, -1e-300, math.Inf(1), 0.5}
	ref := fnv.New128a()
	var buf [8]byte
	h := newFNV128a()
	for _, v := range vals {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		ref.Write(buf[:])
		h.writeFloat(v)
	}
	var want [2]uint64
	for i, c := range ref.Sum(nil) {
		want[i/8] = want[i/8]<<8 | uint64(c)
	}
	if got := h.sum(); got != want {
		t.Errorf("fnv128a = %x, stdlib %x", got, want)
	}
}
