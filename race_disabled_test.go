//go:build !race

package parmvn

const raceEnabled = false
