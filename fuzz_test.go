package parmvn

import (
	"math"
	"strings"
	"testing"
)

// fuzzSession is one shared small session for FuzzLimits: the fuzzed
// queries all target the same locations and kernel, so after the first
// factorization every iteration runs warm and the fuzzer spends its budget
// on the limit-handling paths, not on Cholesky.
var fuzzLocs = Grid(3, 3)

// decodeLimit turns one fuzzed (selector, value) pair into a limit entry,
// covering the degenerate patterns the query path must survive: finite
// values, ±Inf, NaN, and huge magnitudes.
func decodeLimit(sel uint8, v float64) float64 {
	switch sel % 5 {
	case 0:
		return v
	case 1:
		return math.Inf(-1)
	case 2:
		return math.Inf(1)
	case 3:
		return math.NaN()
	default:
		return v * 1e12
	}
}

// FuzzLimits drives Session.MVNProb (and, on a fuzzed bit, MVTProb) with
// adversarial integration limits — a > b, ±Inf in every pattern, NaN,
// mismatched and zero lengths — and pins the entry-point contract: the call
// never panics, and it returns either a typed "parmvn:" error or a finite
// probability in [0,1]. Empty boxes (some a[i] ≥ b[i]) must come back as
// exactly 0.
func FuzzLimits(f *testing.F) {
	f.Add(uint8(9), uint8(9), uint8(0), uint8(0), -1.0, 1.0, 0.0, false)
	f.Add(uint8(9), uint8(9), uint8(1), uint8(2), 0.0, 0.0, 5.0, true)
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), 0.0, 0.0, 0.0, false)
	f.Add(uint8(9), uint8(3), uint8(0), uint8(0), -1.0, 1.0, 0.0, false)
	f.Add(uint8(9), uint8(9), uint8(3), uint8(3), 2.0, -2.0, -1.0, true)
	f.Add(uint8(12), uint8(9), uint8(4), uint8(4), 1e308, -1e308, 0.5, false)

	s := NewSession(Config{TileSize: 3, QMCSize: 200})
	f.Cleanup(s.Close)
	kernel := KernelSpec{Family: "exponential", Range: 0.3}

	f.Fuzz(func(t *testing.T, lenA, lenB, selA, selB uint8, va, vb, nu float64, mvt bool) {
		n := len(fuzzLocs)
		a := make([]float64, int(lenA)%(n+4))
		b := make([]float64, int(lenB)%(n+4))
		for i := range a {
			a[i] = decodeLimit(selA+uint8(i), va)
		}
		for i := range b {
			b[i] = decodeLimit(selB+uint8(i), vb)
		}

		var res Result
		var err error
		if mvt {
			res, err = s.MVTProb(fuzzLocs, kernel, nu, a, b)
		} else {
			res, err = s.MVNProb(fuzzLocs, kernel, a, b)
		}
		if err != nil {
			if !strings.HasPrefix(err.Error(), "parmvn:") {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if math.IsNaN(res.Prob) || res.Prob < 0 || res.Prob > 1 {
			t.Fatalf("prob %g outside [0,1] for a=%v b=%v", res.Prob, a, b)
		}
		for i := range a {
			if a[i] >= b[i] && res.Prob != 0 {
				t.Fatalf("empty box (a[%d]=%g ≥ b[%d]=%g) returned prob %g, want 0", i, a[i], i, b[i], res.Prob)
			}
		}
	})
}
