package parmvn

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestMVNProbAdaptiveMatchesDense is the cross-representation property test:
// over random SPD kernels, MethodAdaptive must reproduce the dense float64
// reference probability within the configured accuracy (the QMC sampling is
// deterministic per configuration, so any difference comes from the factor
// representations alone).
func TestMVNProbAdaptiveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 64 + rng.Intn(81) // 64..144
		locs := make([]Point, n)
		for i := range locs {
			locs[i] = Point{rng.Float64(), rng.Float64()}
		}
		kernel := KernelSpec{
			Family: []string{"exponential", "matern"}[rng.Intn(2)],
			Range:  0.1 + 0.3*rng.Float64(),
			Nu:     1.5,
			Nugget: 0.05,
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = -1.5 - rng.Float64()
			b[i] = 1.5 + rng.Float64()
		}
		var probs [2]float64
		for m, method := range []Method{Dense, MethodAdaptive} {
			s := NewSession(Config{
				Method: method, TileSize: 16, QMCSize: 2000, TLRTol: 1e-6,
				TLRMaxRank: -1, AdaptiveF32Norm: 0.5,
			})
			res, err := s.MVNProb(locs, kernel, a, b)
			s.Close()
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, method, err)
			}
			probs[m] = res.Prob
		}
		if probs[0] <= 0 || probs[0] >= 1 {
			t.Fatalf("trial %d: implausible dense probability %v", trial, probs[0])
		}
		// Accuracy budget: TLRTol-level compression plus f32 tile rounding,
		// both far below the QMC standard error at N=2000.
		if d := math.Abs(probs[0] - probs[1]); d > 1e-3*math.Max(probs[0], 0.01) {
			t.Errorf("trial %d (n=%d %s): dense %v vs adaptive %v differ by %v",
				trial, n, kernel.Family, probs[0], probs[1], d)
		}
	}
}

// TestAdaptiveMethodPlumbing pins the public surface of the new method.
func TestAdaptiveMethodPlumbing(t *testing.T) {
	if MethodAdaptive.String() != "adaptive" {
		t.Errorf("MethodAdaptive.String() = %q", MethodAdaptive.String())
	}
	s := NewSession(Config{Method: MethodAdaptive})
	defer s.Close()
	c := s.Config()
	if c.AdaptiveBand != 1 || c.AdaptiveRankFrac != 0.5 || c.AdaptiveF32Norm != 0.1 {
		t.Errorf("unexpected adaptive defaults: %+v", c)
	}
}

// TestTileSizeValidatedAtEntryPoints checks every Session entry point rejects
// a tile size larger than the problem dimension with a clear error instead
// of failing deep inside tiling.
func TestTileSizeValidatedAtEntryPoints(t *testing.T) {
	s := NewSession(Config{TileSize: 64, QMCSize: 200})
	defer s.Close()
	locs := Grid(3, 3) // n = 9 < 64
	n := len(locs)
	kernel := KernelSpec{Range: 0.2}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range b {
		a[i], b[i] = -1, 1
	}
	sigma := CovarianceMatrix(locs, kernel)
	mean := make([]float64, n)

	checks := []struct {
		name string
		err  func() error
	}{
		{"MVNProb", func() error { _, err := s.MVNProb(locs, kernel, a, b); return err }},
		{"MVNProbBatch", func() error { _, err := s.MVNProbBatch(locs, kernel, []Bounds{{A: a, B: b}}); return err }},
		{"MVNProbCov", func() error { _, err := s.MVNProbCov(sigma, a, b); return err }},
		{"MVTProb", func() error { _, err := s.MVTProb(locs, kernel, 4, a, b); return err }},
		{"DetectRegion", func() error { _, err := s.DetectRegion(locs, kernel, mean, 0, 0.9, 4); return err }},
		{"DetectRegionCov", func() error { _, err := s.DetectRegionCov(sigma, mean, 0, 0.9, 4); return err }},
	}
	for _, c := range checks {
		err := c.err()
		if err == nil || !strings.Contains(err.Error(), "TileSize") {
			t.Errorf("%s: want TileSize validation error, got %v", c.name, err)
		}
	}
}

// TestCollectStatsAttachesSnapshot checks Result carries scheduler stats
// when requested and stays lean otherwise.
func TestCollectStatsAttachesSnapshot(t *testing.T) {
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range b {
		a[i], b[i] = -1, 1
	}
	kernel := KernelSpec{Range: 0.15}

	s := NewSession(Config{TileSize: 8, QMCSize: 200, CollectStats: true})
	res, err := s.MVNProb(locs, kernel, a, b)
	s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("CollectStats: Result.Stats is nil")
	}
	if res.Stats.Total() == 0 || res.Stats.Tasks["potrf"] == 0 {
		t.Errorf("implausible stats snapshot: %+v", res.Stats.Tasks)
	}
	if res.Stats.PeakReady < 1 {
		t.Errorf("peak ready-queue depth %d, want ≥ 1", res.Stats.PeakReady)
	}

	s2 := NewSession(Config{TileSize: 8, QMCSize: 200})
	res2, err := s2.MVNProb(locs, kernel, a, b)
	s2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats != nil {
		t.Error("Stats must be nil when CollectStats is off")
	}
}
