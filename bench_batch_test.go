// Benchmarks for the batched MVN query path: one factorization amortized
// over a batch of queries (the session factor cache) plus parallel fan-out
// across the task runtime, against the pre-batching baseline of independent
// sequential MVNProb calls that each re-assemble and re-factorize Σ.
//
// The headline comparison at n=1024:
//
//	go test -bench BenchmarkBatchVsSequential -benchtime 3x
package parmvn

import (
	"fmt"
	"math"
	"testing"
)

const (
	batchBenchSide    = 32 // n = 1024
	batchBenchQueries = 10
)

func batchBenchInputs() ([]Point, KernelSpec, []Bounds) {
	locs := Grid(batchBenchSide, batchBenchSide)
	kernel := KernelSpec{Family: "exponential", Range: 0.1}
	n := len(locs)
	queries := make([]Bounds, batchBenchQueries)
	for q := range queries {
		lo := -1.0 + 1.2*float64(q)/float64(batchBenchQueries-1)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = lo
			b[i] = math.Inf(1)
		}
		queries[q] = Bounds{A: a, B: b}
	}
	return locs, kernel, queries
}

// batchBenchConfig uses the paper's TLR method, where the amortized work —
// covariance assembly, TLR compression and TLR Cholesky — dominates a
// single query's QMC integration, so caching the factor pays off even on
// one core; with more workers the parallel query fan-out compounds it.
func batchBenchConfig(noCache bool) Config {
	return Config{Method: TLR, QMCSize: 500, TileSize: 64, NoFactorCache: noCache}
}

// BenchmarkBatchVsSequential is the acceptance benchmark: Sequential is 10
// independent MVNProb calls with the factor cache disabled (every call pays
// assembly + compression + factorization, the seed behavior); BatchWarm is
// one MVNProbBatch against a session whose factor cache already holds the
// factor. Compare ns/op directly — both do the same 10 queries per op.
func BenchmarkBatchVsSequential(b *testing.B) {
	locs, kernel, queries := batchBenchInputs()

	b.Run("Sequential", func(b *testing.B) {
		s := NewSession(batchBenchConfig(true))
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := s.MVNProb(locs, kernel, q.A, q.B); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("BatchWarm", func(b *testing.B) {
		s := NewSession(batchBenchConfig(false))
		defer s.Close()
		// Warm the factor cache, then measure steady-state batches.
		if _, err := s.MVNProbBatch(locs, kernel, queries[:1]); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MVNProbBatch(locs, kernel, queries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchScaling shows how one warm-cache batch scales with the
// number of queries sharing the factor.
func BenchmarkBatchScaling(b *testing.B) {
	locs, kernel, queries := batchBenchInputs()
	for _, nq := range []int{1, 4, 10} {
		nq := nq
		b.Run(fmt.Sprintf("queries=%d", nq), func(b *testing.B) {
			s := NewSession(batchBenchConfig(false))
			defer s.Close()
			if _, err := s.MVNProbBatch(locs, kernel, queries[:1]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.MVNProbBatch(locs, kernel, queries[:nq]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFactorCache isolates the cache itself: a cache hit versus a full
// assemble + factorize miss at n=1024.
func BenchmarkFactorCache(b *testing.B) {
	locs, kernel, queries := batchBenchInputs()
	single := queries[:1]

	b.Run("Miss", func(b *testing.B) {
		s := NewSession(batchBenchConfig(false))
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Cache().Purge()
			if _, err := s.MVNProbBatch(locs, kernel, single); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hit", func(b *testing.B) {
		s := NewSession(batchBenchConfig(false))
		defer s.Close()
		if _, err := s.MVNProbBatch(locs, kernel, single); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MVNProbBatch(locs, kernel, single); err != nil {
				b.Fatal(err)
			}
		}
	})
}
