// Command mvnprob computes one high-dimensional MVN probability
// Φn(a,b;0,Σ) for a Gaussian field on a regular grid, with dense or TLR
// factorization, and reports the probability, error estimate and timing.
//
// With -batch N it evaluates N queries whose lower limits sweep a span of
// thresholds against the same covariance in one MVNProbBatch call: the
// factorization is paid once (and cached on the session) and the queries run
// in parallel on the task runtime.
//
// With -cpuprofile/-memprofile it writes pprof profiles of the run, so
// query-path performance work starts from data (`go tool pprof <file>`).
//
// With -serve ADDR it becomes a query server instead: the same engine
// configuration behind the mvnserve HTTP/JSON endpoints (see cmd/mvnserve
// for the full set of serving knobs).
//
// Example:
//
//	mvnprob -grid 40 -kernel exponential -range 0.1 -lower -0.5 -method tlr -qmc 5000
//	mvnprob -grid 32 -batch 10 -batch-span 1.5
//	mvnprob -grid 32 -batch 20 -cpuprofile cpu.prof -memprofile mem.prof
//	mvnprob -method tlr -qmc 5000 -serve :8080
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro"
	"repro/internal/serve"
)

// stopTag names how a budgeted query stopped: converged on its error
// target, canceled, or capped by the sample/deadline budget.
func stopTag(r parmvn.Result) string {
	switch {
	case r.Converged:
		return "  (converged)"
	case r.Canceled:
		return "  (canceled)"
	default:
		return "  (budget-capped)"
	}
}

// printStats reports the scheduler behavior of the run when the session
// collected statistics (the -stats flag).
func printStats(res parmvn.Result) {
	if res.Stats == nil {
		return
	}
	fmt.Printf("scheduler      %d tasks executed, peak ready-queue depth %d\n",
		res.Stats.Total(), res.Stats.PeakReady)
	fmt.Printf("               peak in-flight %d, %d tasks stolen\n",
		res.Stats.PeakInflight, res.Stats.Stolen)
	kinds := make([]string, 0, len(res.Stats.Tasks))
	for k := range res.Stats.Tasks {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-12s %8d tasks  %10.3fms busy\n",
			k, res.Stats.Tasks[k], float64(res.Stats.BusyTime[k].Microseconds())/1000)
	}
}

func main() {
	grid := flag.Int("grid", 20, "grid side (dimension = grid²)")
	family := flag.String("kernel", "exponential", "kernel family: exponential, matern, powexp")
	rng := flag.Float64("range", 0.1, "kernel range parameter")
	nu := flag.Float64("nu", 1.5, "Matérn smoothness / powexp exponent")
	nugget := flag.Float64("nugget", 0, "white-noise nugget τ² added to the kernel diagonal")
	lower := flag.Float64("lower", -0.5, "common lower integration limit (upper is +Inf)")
	upper := flag.Float64("upper", math.Inf(1), "common upper integration limit")
	method := flag.String("method", "dense", "factorization: dense, tlr or adaptive")
	tol := flag.Float64("tlr-tol", 1e-4, "TLR compression accuracy")
	qmc := flag.Int("qmc", 2000, "QMC sample size")
	reps := flag.Int("reps", 3, "randomized QMC replicates for the error estimate")
	tile := flag.Int("tile", 0, "tile size (0 = auto)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	tracePath := flag.String("trace", "", "write a Chrome trace of the task execution to this file")
	batch := flag.Int("batch", 0, "evaluate this many lower-limit thresholds as one batched query (0 = single query)")
	batchSpan := flag.Float64("batch-span", 1.0, "lower-limit span covered by the -batch thresholds")
	stats := flag.Bool("stats", false, "report runtime scheduler statistics (tasks executed, peak ready-queue depth)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	serveAddr := flag.String("serve", "", "serve HTTP/JSON queries on this address (same engine configuration) instead of computing one query")
	sweep := flag.String("sweep", "f64", "QMC sweep precision: f64, or f32 for a float32 conditioning sweep (faster, accuracy within the QMC error bar)")
	maxRelErr := flag.Float64("maxrelerr", 0, "early-stop relative-error target: the integration runs incremental waves and stops once the streaming error estimate meets it (0 = fixed -qmc samples)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget per query (e.g. 50ms); the running estimate is returned when it expires (0 = none)")
	scalePath := flag.String("scale", "", "run the out-of-core scaling benchmark (streaming TLR factorize + warm query per size) and write JSON rows to this file")
	scaleSizes := flag.String("scale-sizes", "10000,25000,50000", "comma-separated target dimensions for -scale (each rounded to a square grid)")
	scaleTile := flag.Int("scale-tile", 512, "tile size for -scale runs")
	flag.Parse()

	sweepF32 := false
	switch *sweep {
	case "f64":
	case "f32":
		sweepF32 = true
	default:
		fmt.Fprintf(os.Stderr, "mvnprob: unknown sweep %q (want f64 or f32)\n", *sweep)
		os.Exit(2)
	}

	if *scalePath != "" {
		if err := runScale(*scalePath, *scaleSizes, *scaleTile, *tol, *qmc, *reps, *workers, *rng, *family, *nu, *nugget, *lower); err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		return
	}

	if *serveAddr != "" {
		m := parmvn.Dense
		switch *method {
		case "dense":
		case "tlr":
			m = parmvn.TLR
		case "adaptive":
			m = parmvn.MethodAdaptive
		default:
			// A server started with a typoed method would silently serve
			// dense; fail loudly instead (single-query mode keeps its
			// historical lenient default).
			fmt.Fprintf(os.Stderr, "mvnprob: unknown method %q\n", *method)
			os.Exit(2)
		}
		srv := serve.New(serve.Config{Session: parmvn.Config{
			Method: m, Workers: *workers, TileSize: *tile,
			TLRTol: *tol, QMCSize: *qmc, Replicates: *reps,
		}})
		fmt.Printf("mvnprob: serving on %s (method %s, qmc %d, %d replicates)\n", *serveAddr, *method, *qmc, *reps)
		if err := http.ListenAndServe(*serveAddr, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Report-only on failure: os.Exit here would skip the CPU-profile
		// defers registered above and truncate that file too.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvnprob:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mvnprob:", err)
			}
		}()
	}

	m := parmvn.Dense
	switch *method {
	case "tlr":
		m = parmvn.TLR
	case "adaptive":
		m = parmvn.MethodAdaptive
	}
	ts := *tile
	if ts == 0 {
		// Auto tile size, clamped to the dimension so tiny grids still run.
		ts = min(max(16, (*grid)*(*grid)/10), (*grid)*(*grid))
	}
	s := parmvn.NewSession(parmvn.Config{
		Method: m, Workers: *workers, TileSize: ts,
		TLRTol: *tol, QMCSize: *qmc, Replicates: *reps,
		CollectStats: *stats, SweepF32: sweepF32,
	})
	defer s.Close()

	if *tracePath != "" {
		s.EnableTracing()
	}
	locs := parmvn.Grid(*grid, *grid)
	n := len(locs)
	kernel := parmvn.KernelSpec{Family: *family, Range: *rng, Nu: *nu, Nugget: *nugget}
	fmt.Printf("dimension      %d\n", n)
	fmt.Printf("method         %s (tile %d)\n", m, ts)
	if sweepF32 {
		fmt.Printf("sweep          f32\n")
	}
	fmt.Printf("QMC            N=%d, %d replicates\n", *qmc, *reps)
	qopts := parmvn.QueryOpts{MaxRelErr: *maxRelErr, Budget: *deadline}
	budgeted := *maxRelErr > 0 || *deadline > 0
	if budgeted {
		fmt.Printf("early stop     target rel err %g, deadline %v (N is the total sample budget)\n", *maxRelErr, *deadline)
	}
	if *batch > 1 {
		queries := make([]parmvn.Bounds, *batch)
		for q := range queries {
			lo := *lower + *batchSpan*float64(q)/float64(*batch-1)
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i] = lo
				b[i] = *upper
			}
			queries[q] = parmvn.Bounds{A: a, B: b}
		}
		start := time.Now()
		var batchOpts []parmvn.QueryOpts
		if budgeted {
			batchOpts = []parmvn.QueryOpts{qopts} // shared by every query
		}
		results, err := s.MVNProbBatchOpts(locs, kernel, queries, batchOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		for q, r := range results {
			if budgeted {
				fmt.Printf("  lower %+.4f  probability %.8g  stderr %.2e  relerr %.2e  samples %d%s\n",
					queries[q].A[0], r.Prob, r.StdErr, r.RelErr, r.Samples, stopTag(r))
			} else {
				fmt.Printf("  lower %+.4f  probability %.8g  stderr %.2e\n",
					queries[q].A[0], r.Prob, r.StdErr)
			}
		}
		hits, misses := s.Cache().Stats()
		fmt.Printf("batch          %d queries, 1 factorization (cache %d hit / %d miss)\n",
			*batch, hits, misses)
		fmt.Printf("elapsed        %.3fs\n", time.Since(start).Seconds())
		printStats(results[len(results)-1])
	} else {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = *lower
			b[i] = *upper
		}
		start := time.Now()
		res, err := s.MVNProbOpts(locs, kernel, a, b, qopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		fmt.Printf("probability    %.8g\n", res.Prob)
		fmt.Printf("std error      %.2e\n", res.StdErr)
		if budgeted {
			fmt.Printf("achieved       rel err %.3e with %d samples%s\n", res.RelErr, res.Samples, stopTag(res))
		}
		fmt.Printf("elapsed        %.3fs\n", time.Since(start).Seconds())
		printStats(res)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := s.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "mvnprob:", err)
			os.Exit(1)
		}
		fmt.Printf("trace          %s\n", *tracePath)
	}
}
