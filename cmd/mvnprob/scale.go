package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
)

// The -scale driver: for each target dimension it builds a fresh session,
// streams the TLR factorization directly from the kernel (windowed
// submission, right-looking eviction), runs one warm query against the
// cached factor, and records wall times, peak memory (sampled Go heap and
// OS RSS), the factor's representation mix and byte footprint before/after
// eviction, and the scheduler counters. The rows are written as JSON —
// BENCH_scale.json in the repository is produced by exactly this path.

// scaleRow is one benchmark record.
type scaleRow struct {
	N        int     `json:"n"`
	GridSide int     `json:"grid_side"`
	TileSize int     `json:"tile_size"`
	Method   string  `json:"method"`
	Kernel   string  `json:"kernel"`
	TLRTol   float64 `json:"tlr_tol"`
	QMCSize  int     `json:"qmc_size"`
	Workers  int     `json:"workers"`

	FactorizeSec float64 `json:"factorize_sec"`
	WarmQuerySec float64 `json:"warm_query_sec"`
	Prob         float64 `json:"prob"`

	PeakHeapAllocBytes uint64  `json:"peak_heap_alloc_bytes"`
	PeakRSSBytes       uint64  `json:"peak_rss_bytes"`
	DenseBytes         int64   `json:"dense_bytes"` // the 8·n² baseline
	RSSFracOfDense     float64 `json:"rss_frac_of_dense"`

	FactorBytes          int64 `json:"factor_bytes"`
	FactorBytesAssembled int64 `json:"factor_bytes_assembled"`
	TilesDense64         int   `json:"tiles_dense64"`
	TilesDense32         int   `json:"tiles_dense32"`
	TilesLowRank         int   `json:"tiles_lowrank"`
	MaxRank              int   `json:"max_rank"`
	TilesEvicted         int   `json:"tiles_evicted"`

	TasksTotal   int `json:"tasks_total"`
	PeakInflight int `json:"peak_inflight"`
	Stolen       int `json:"stolen"`
}

// memSampler polls the Go heap and the OS resident set while a benchmark
// phase runs, keeping the maxima. Peak capture by sampling slightly
// underestimates short spikes; the checked-in numbers note the cadence.
type memSampler struct {
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	peakHeap uint64
	peakRSS  uint64
}

func startSampler() *memSampler {
	s := &memSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				s.sample()
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rss := readVmRSS()
	s.mu.Lock()
	if ms.HeapAlloc > s.peakHeap {
		s.peakHeap = ms.HeapAlloc
	}
	if rss > s.peakRSS {
		s.peakRSS = rss
	}
	s.mu.Unlock()
}

// halt stops sampling and returns the peaks.
func (s *memSampler) halt() (peakHeap, peakRSS uint64) {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakHeap, s.peakRSS
}

// readVmRSS returns the current resident set in bytes from
// /proc/self/status, or 0 where that interface does not exist.
func readVmRSS() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// runScale executes the scaling benchmark and writes the JSON rows to path.
func runScale(path, sizes string, ts int, tol float64, qmc, reps, workers int, rng float64, family string, nu, nugget, lower float64) error {
	var rows []scaleRow
	for _, tok := range strings.Split(sizes, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		target, err := strconv.Atoi(tok)
		if err != nil {
			return fmt.Errorf("bad -scale-sizes entry %q: %w", tok, err)
		}
		row, err := runScaleOne(target, ts, tol, qmc, reps, workers, rng, family, nu, nugget, lower)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	out := struct {
		GOOS    string     `json:"goos"`
		GOARCH  string     `json:"goarch"`
		NumCPU  int        `json:"num_cpu"`
		Sampler string     `json:"sampler"`
		Rows    []scaleRow `json:"rows"`
	}{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Sampler: "runtime.MemStats.HeapAlloc + /proc/self/status VmRSS @ 20ms",
		Rows:    rows,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("scale          wrote %d rows to %s\n", len(rows), path)
	return nil
}

// runScaleOne benchmarks one dimension with a fresh session so cache state,
// pools and scheduler counters start cold.
func runScaleOne(target, ts int, tol float64, qmc, reps, workers int, rng float64, family string, nu, nugget, lower float64) (scaleRow, error) {
	side := int(math.Round(math.Sqrt(float64(target))))
	locs := parmvn.Grid(side, side)
	n := len(locs)
	s := parmvn.NewSession(parmvn.Config{
		Method: parmvn.TLR, Workers: workers, TileSize: ts,
		TLRTol: tol, QMCSize: qmc, Replicates: reps,
	})
	defer s.Close()
	kernel := parmvn.KernelSpec{Family: family, Range: rng, Nu: nu, Nugget: nugget}
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = lower
		b[i] = math.Inf(1)
	}

	fmt.Printf("scale n=%d (grid %d², tile %d): factorizing...", n, side, ts)
	runtime.GC()
	sampler := startSampler()
	t0 := time.Now()
	fp, err := s.FactorFootprint(locs, kernel)
	factorizeSec := time.Since(t0).Seconds()
	if err != nil {
		sampler.halt()
		fmt.Println()
		return scaleRow{}, fmt.Errorf("n=%d factorize: %w", n, err)
	}
	t0 = time.Now()
	res, err := s.MVNProb(locs, kernel, a, b)
	querySec := time.Since(t0).Seconds()
	peakHeap, peakRSS := sampler.halt()
	if err != nil {
		fmt.Println()
		return scaleRow{}, fmt.Errorf("n=%d query: %w", n, err)
	}
	stats := s.SchedulerStats()
	denseBytes := 8 * int64(n) * int64(n)
	row := scaleRow{
		N: n, GridSide: side, TileSize: ts, Method: "tlr",
		Kernel: fmt.Sprintf("%s nu=%g range=%g nugget=%g", family, nu, rng, nugget),
		TLRTol: tol, QMCSize: qmc, Workers: s.Config().Workers,
		FactorizeSec: factorizeSec, WarmQuerySec: querySec, Prob: res.Prob,
		PeakHeapAllocBytes: peakHeap, PeakRSSBytes: peakRSS,
		DenseBytes:     denseBytes,
		RSSFracOfDense: float64(peakRSS) / float64(denseBytes),
		FactorBytes:    fp.Bytes, FactorBytesAssembled: fp.BytesAssembled,
		TilesDense64: fp.Dense64, TilesDense32: fp.Dense32,
		TilesLowRank: fp.LowRank, MaxRank: fp.MaxRank, TilesEvicted: fp.TilesEvicted,
		TasksTotal: stats.Total(), PeakInflight: stats.PeakInflight, Stolen: stats.Stolen,
	}
	fmt.Printf(" %.2fs factorize, %.2fs query, rss %.0f MiB (%.1f%% of dense), factor %.0f MiB\n",
		factorizeSec, querySec,
		float64(peakRSS)/(1<<20), 100*row.RSSFracOfDense, float64(fp.Bytes)/(1<<20))
	return row, nil
}
