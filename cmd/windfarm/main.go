// Command windfarm runs the paper's wind-energy application end to end on
// the synthetic Saudi-Arabia wind dataset: it generates the multi-day wind
// record, standardizes the target day, detects the regions with ≥95%
// confidence of exceeding 4 m/s (suitable wind-farm sites), and prints the
// maps for dense and TLR factorizations side by side with timings.
//
// Example:
//
//	windfarm -nx 24 -ny 20 -u 4 -conf 0.95
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/wind"
)

func main() {
	nx := flag.Int("nx", 20, "grid points in longitude")
	ny := flag.Int("ny", 16, "grid points in latitude")
	days := flag.Int("days", 90, "simulated days")
	u := flag.Float64("u", 4.0, "wind-speed threshold in m/s")
	conf := flag.Float64("conf", 0.95, "confidence level")
	qmc := flag.Int("qmc", 3000, "QMC sample size")
	seed := flag.Int64("seed", 11, "dataset seed")
	workers := flag.Int("workers", 0, "worker goroutines")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "windfarm:", err)
		os.Exit(1)
	}
	ds, err := wind.Generate(wind.Config{Nx: *nx, Ny: *ny, Days: *days, Seed: *seed})
	if err != nil {
		die(err)
	}
	day := *days * 2 / 3
	_, mean, sd := ds.Standardize(day)
	n := ds.Geom.Len()
	fmt.Printf("synthetic Saudi wind dataset: %d locations × %d days, target day %d\n", n, *days, day)

	// Model: unit-variance Matérn anomaly with the generator's truth
	// (smoothness 1.43391, as the paper's ExaGeoStat fit).
	locs := parmvn.Grid(*nx, *ny)
	kernel := parmvn.KernelSpec{Family: "matern", Range: 0.12, Nu: 1.43391, Nugget: 1e-6}

	for _, method := range []parmvn.Method{parmvn.Dense, parmvn.TLR} {
		s := parmvn.NewSession(parmvn.Config{
			Method: method, Workers: *workers, TileSize: min(max(16, n/10), n),
			QMCSize: *qmc, TLRTol: 1e-4,
		})
		start := time.Now()
		// DetectRegion works on the standardized field: thresholds are
		// standardized per location through mean/sd, so pass the
		// climatological mean/sd directly with the raw threshold.
		exc, err := detect(s, locs, kernel, mean, sd, *u, *conf)
		if err != nil {
			s.Close()
			die(err)
		}
		elapsed := time.Since(start)
		s.Close()
		fmt.Printf("\n%s: %d suitable wind-farm locations (%.2fs)\n", method, len(exc.Region), elapsed.Seconds())
		mask := exc.InRegion(n)
		for j := *ny - 1; j >= 0; j-- {
			for i := 0; i < *nx; i++ {
				if mask[j*(*nx)+i] {
					fmt.Print("#")
				} else {
					fmt.Print(".")
				}
			}
			fmt.Println()
		}
	}
}

// detect runs CRD for a field whose marginal law at location i is
// N(mean[i], sd[i]²) with the given spatial correlation kernel: the
// correlation goes through the kernel, the marginals through a per-location
// covariance scaling of the limits, which DetectRegionCov handles by
// passing the scaled covariance.
func detect(s *parmvn.Session, locs []parmvn.Point, kernel parmvn.KernelSpec, mean, sd []float64, u, conf float64) (*parmvn.Excursion, error) {
	n := len(locs)
	// Build the covariance Σij = sd_i·sd_j·ρij; DetectRegionCov
	// standardizes internally.
	sigma := make([][]float64, n)
	for i := range sigma {
		sigma[i] = make([]float64, n)
	}
	corr := parmvn.CovarianceMatrix(locs, kernel)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sigma[i][j] = sd[i] * sd[j] * corr[i][j]
		}
	}
	return s.DetectRegionCov(sigma, mean, u, conf, 16)
}
