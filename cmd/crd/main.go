// Command crd runs confidence-region detection on a synthetic Gaussian
// field (the paper's Algorithm 1) and prints the detected region as an
// ASCII map together with the marginal-probability comparison that
// motivates joint MVN modeling.
//
// Example:
//
//	crd -grid 24 -level strong -u 0.5 -conf 0.95 -method tlr
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/datagen"
)

func main() {
	grid := flag.Int("grid", 20, "grid side (dimension = grid²)")
	level := flag.String("level", "medium", "correlation level: weak, medium, strong")
	u := flag.Float64("u", 0.0, "exceedance threshold")
	conf := flag.Float64("conf", 0.95, "confidence level 1-alpha")
	method := flag.String("method", "dense", "factorization: dense, tlr or adaptive")
	qmc := flag.Int("qmc", 3000, "QMC sample size")
	obs := flag.Float64("obs", 0.25, "fraction of locations observed")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker goroutines")
	batch := flag.Bool("batch", true, "fan the confidence-function probability queries out in parallel (false = sequential baseline)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "crd:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	n := (*grid) * (*grid)
	ds, err := datagen.NewSyntheticDataset(*grid, int(*obs*float64(n)), *level, rng)
	if err != nil {
		die(err)
	}

	m := parmvn.Dense
	switch *method {
	case "tlr":
		m = parmvn.TLR
	case "adaptive":
		m = parmvn.MethodAdaptive
	}
	s := parmvn.NewSession(parmvn.Config{
		Method: m, Workers: *workers, TileSize: min(max(16, n/8), n), QMCSize: *qmc, TLRTol: 1e-4,
		SequentialBatch: !*batch,
	})
	defer s.Close()

	// Posterior covariance as rows for the public API.
	sigma := make([][]float64, n)
	for i := range sigma {
		sigma[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			sigma[i][j] = ds.PostCov.At(i, j)
		}
	}
	start := time.Now()
	exc, err := s.DetectRegionCov(sigma, ds.PostMu, *u, *conf, 16)
	if err != nil {
		die(err)
	}
	elapsed := time.Since(start)

	mask := exc.InRegion(n)
	marginal := 0
	for _, p := range exc.Marginal {
		if p >= *conf {
			marginal++
		}
	}
	fmt.Printf("confidence region at u=%g, 1-alpha=%g (%s, %.3fs): %d of %d locations\n",
		*u, *conf, m, elapsed.Seconds(), len(exc.Region), n)
	fmt.Printf("naive marginal region (pM >= %g): %d locations\n\n", *conf, marginal)
	fmt.Println("legend: # in region, + marginal-only, . outside")
	for j := *grid - 1; j >= 0; j-- {
		for i := 0; i < *grid; i++ {
			idx := j*(*grid) + i
			switch {
			case mask[idx]:
				fmt.Print("#")
			case exc.Marginal[idx] >= *conf:
				fmt.Print("+")
			default:
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
}
