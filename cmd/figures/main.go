// Command figures regenerates the paper's tables and figures as text.
//
// Usage:
//
//	figures [-quick=false] [-workers N] [-fig 1|2|4|5|6|7] [-table 2|3] [-all]
//
// Figure 3 is produced together with Figure 2 (same experiment), Table II
// with Figure 4 and Table III with Figure 7.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	quick := flag.Bool("quick", true, "run the seconds-scale variants; -quick=false approaches the paper's settings")
	workers := flag.Int("workers", 0, "task-runtime workers (0 = default)")
	fig := flag.Int("fig", 0, "regenerate one figure (1, 2, 4, 5, 6 or 7)")
	table := flag.Int("table", 0, "regenerate one table (2 or 3)")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	cfg := figures.Config{Quick: *quick, Workers: *workers}
	w := os.Stdout
	runAll := *all || (*fig == 0 && *table == 0)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if runAll || *fig == 1 {
		if _, err := figures.Fig1(w, cfg); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if runAll || *fig == 2 || *fig == 3 {
		if _, err := figures.Fig2(w, cfg); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if runAll || *fig == 4 || *table == 2 {
		rows, err := figures.Fig4(w, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		figures.Table2(w, rows)
		fmt.Fprintln(w)
	}
	if runAll || *fig == 5 {
		if _, err := figures.Fig5(w, cfg); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if runAll || *fig == 6 {
		if _, err := figures.Fig6(w, cfg); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
	}
	if runAll || *fig == 7 || *table == 3 {
		rows, err := figures.Fig7(w, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		figures.Table3(w, rows)
	}
}
