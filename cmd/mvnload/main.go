// Command mvnload is the serving-layer load generator: it drives an
// mvnserve server (or router) with a configurable key-set size, arrival
// process and budget mix, and records throughput and latency percentiles
// into a benchmark JSON file.
//
// The key set is K distinct covariance models (same grid, kernel range
// varied), so -keys controls how hard the factor cache and — through a
// router — the consistent-hash placement are exercised: K=1 is a pure
// warm-path benchmark, K larger than the cache capacity forces eviction
// traffic.
//
// Two load modes:
//
//   - closed loop (default): -conc workers each keep exactly one request
//     outstanding — throughput is measured at a fixed concurrency.
//   - open loop: -rate R > 0 fires R requests/second regardless of
//     completions (Poisson-free, fixed spacing) — latency is measured at a
//     fixed arrival rate, the way a latency SLO is stated.
//
// Each run appends one record to -out (default BENCH_serve.json), so
// sweeps — 1 backend vs 2 backends behind a router, budget mixes — build
// up one comparable file.
//
// Example:
//
//	mvnload -target http://localhost:8080 -duration 10s -keys 8 \
//	        -conc 16 -budget-mix 0.5 -max-error 1e-2 -label direct-1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// runRecord is one benchmark run in the output file.
type runRecord struct {
	Label      string  `json:"label"`
	Target     string  `json:"target"`
	Mode       string  `json:"mode"` // "closed" or "open"
	Keys       int     `json:"keys"`
	Grid       int     `json:"grid"`
	Method     string  `json:"method"`
	Conc       int     `json:"conc,omitempty"`
	RateRPS    float64 `json:"rate_rps,omitempty"`
	BudgetMix  float64 `json:"budget_mix"`
	MaxError   float64 `json:"max_error,omitempty"`
	DurationS  float64 `json:"duration_sec"`
	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	Rejected   uint64  `json:"rejected"`
	QPS        float64 `json:"qps"`
	LatP50Ms   float64 `json:"latency_p50_ms"`
	LatP90Ms   float64 `json:"latency_p90_ms"`
	LatP99Ms   float64 `json:"latency_p99_ms"`
	LatMeanMs  float64 `json:"latency_mean_ms"`
	LatMaxMs   float64 `json:"latency_max_ms"`
	Coalesced  uint64  `json:"coalesced"`
	NotConv    uint64  `json:"not_converged"`
	StartedUTC string  `json:"started_utc"`
}

// workload is the immutable run configuration plus shared result state.
type workload struct {
	target   string
	path     string
	bodies   [][]byte
	client   *http.Client
	deadline time.Time

	sent      atomic.Uint64
	errors    atomic.Uint64
	rejected  atomic.Uint64
	coalesced atomic.Uint64
	notConv   atomic.Uint64

	mu   sync.Mutex
	lats []float64 // milliseconds, successful requests
}

func main() {
	target := flag.String("target", "http://localhost:8080", "server or router base URL")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 0, "untimed warm-up phase before measuring (builds the factor caches)")
	keys := flag.Int("keys", 4, "distinct covariance models in the key set")
	grid := flag.Int("grid", 16, "problem grid side (dimension = grid*grid)")
	method := flag.String("method", "", "per-request method override: dense, tlr, adaptive (empty = server default)")
	conc := flag.Int("conc", 8, "closed-loop concurrency (workers with one request outstanding each)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	budgetMix := flag.Float64("budget-mix", 0, "fraction of requests carrying a max_error budget, in [0,1]")
	maxError := flag.Float64("max-error", 1e-2, "relative-error budget on budgeted requests")
	mvt := flag.Float64("nu", 0, "send MVT queries with this many degrees of freedom (0 = MVN)")
	seed := flag.Int64("seed", 1, "PRNG seed for the key/budget schedule")
	out := flag.String("out", "BENCH_serve.json", "benchmark record file (appended to)")
	label := flag.String("label", "", "record label, e.g. direct-1 or router-2")
	flag.Parse()

	if *keys <= 0 || *grid <= 0 || *budgetMix < 0 || *budgetMix > 1 {
		fmt.Fprintln(os.Stderr, "mvnload: -keys and -grid must be positive, -budget-mix in [0,1]")
		os.Exit(2)
	}

	w := &workload{
		target: *target,
		path:   "/v1/mvnprob",
		client: &http.Client{Timeout: 60 * time.Second},
	}
	if *mvt > 0 {
		w.path = "/v1/mvtprob"
	}
	// Pre-render the request bodies — bodies[2k] plain, bodies[2k+1]
	// budgeted, for each of the K distinct kernels (range varied over one
	// grid) — so the hot loop only picks and POSTs.
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *keys; i++ {
		req := map[string]any{
			"grid": map[string]int{"nx": *grid, "ny": *grid},
			"kernel": map[string]any{
				"family": "exponential",
				"sigma2": 1.0,
				"range":  0.05 + 0.2*float64(i)/float64(*keys),
			},
			"lower": -1.0,
		}
		if *method != "" {
			req["method"] = *method
		}
		if *mvt > 0 {
			req["nu"] = *mvt
		}
		plain, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnload:", err)
			os.Exit(2)
		}
		req["max_error"] = *maxError
		budgeted, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnload:", err)
			os.Exit(2)
		}
		w.bodies = append(w.bodies, plain, budgeted)
	}

	// Warm-up: untimed requests cycling through the key set, so measurement
	// starts with every factor built. Measure cold starts with -warmup 0.
	if *warmup > 0 {
		end := time.Now().Add(*warmup)
		for i := 0; time.Now().Before(end); i++ {
			w.fire(w.bodies[(2*i)%len(w.bodies)], false)
		}
	}

	start := time.Now()
	w.deadline = start.Add(*duration)
	mode := "closed"
	if *rate > 0 {
		mode = "open"
		w.runOpen(rng, *rate, *budgetMix)
	} else {
		w.runClosed(rng, *conc, *budgetMix)
	}
	elapsed := time.Since(start).Seconds()

	rec := runRecord{
		Label: *label, Target: *target, Mode: mode,
		Keys: *keys, Grid: *grid, Method: *method,
		BudgetMix: *budgetMix, DurationS: elapsed,
		Requests: w.sent.Load(), Errors: w.errors.Load(), Rejected: w.rejected.Load(),
		Coalesced: w.coalesced.Load(), NotConv: w.notConv.Load(),
		StartedUTC: start.UTC().Format(time.RFC3339),
	}
	if mode == "closed" {
		rec.Conc = *conc
	} else {
		rec.RateRPS = *rate
	}
	if *budgetMix > 0 {
		rec.MaxError = *maxError
	}
	if elapsed > 0 {
		rec.QPS = float64(len(w.lats)) / elapsed
	}
	fillLatencies(&rec, w.lats)

	if err := appendRecord(*out, rec); err != nil {
		fmt.Fprintln(os.Stderr, "mvnload:", err)
		os.Exit(1)
	}
	fmt.Printf("mvnload: %s %d req in %.1fs — %.1f qps, p50 %.2fms p99 %.2fms, %d errors (%d rejected) -> %s\n",
		mode, rec.Requests, elapsed, rec.QPS, rec.LatP50Ms, rec.LatP99Ms, rec.Errors, rec.Rejected, *out)
}

// pickBody selects the next request body: uniform over keys, budgeted with
// probability mix. Callers synchronize access to rng.
func (w *workload) pickBody(rng *rand.Rand, mix float64) []byte {
	key := rng.Intn(len(w.bodies) / 2)
	budgeted := 0
	if mix > 0 && rng.Float64() < mix {
		budgeted = 1
	}
	return w.bodies[2*key+budgeted]
}

// runClosed keeps conc requests outstanding until the deadline: each worker
// draws a body from the pre-rendered schedule and blocks on its response.
func (w *workload) runClosed(rng *rand.Rand, conc int, mix float64) {
	// Pre-draw a schedule per worker so the workers never contend on rng.
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		sched := rand.New(rand.NewSource(rng.Int63()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(w.deadline) {
				w.fire(w.pickBody(sched, mix), true)
			}
		}()
	}
	wg.Wait()
}

// runOpen fires rate requests/second at fixed spacing regardless of
// completions (each request gets its own goroutine) until the deadline —
// latency under a stated arrival rate, including any queueing the server
// builds up.
func (w *workload) runOpen(rng *rand.Rand, rate, mix float64) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var wg sync.WaitGroup
	for time.Now().Before(w.deadline) {
		<-t.C
		body := w.pickBody(rng, mix)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.fire(body, true)
		}()
	}
	wg.Wait()
}

// fire POSTs one body and records the outcome. timed=false (warm-up)
// records nothing.
func (w *workload) fire(body []byte, timed bool) {
	t0 := time.Now()
	resp, err := w.client.Post(w.target+w.path, "application/json", bytes.NewReader(body))
	if err != nil {
		if timed {
			w.sent.Add(1)
			w.errors.Add(1)
		}
		return
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !timed {
		return
	}
	w.sent.Add(1)
	if resp.StatusCode != http.StatusOK {
		w.errors.Add(1)
		if resp.StatusCode == http.StatusServiceUnavailable {
			w.rejected.Add(1)
		}
		return
	}
	var r struct {
		Coalesced bool    `json:"coalesced"`
		Converged bool    `json:"converged"`
		MaxError  float64 `json:"max_error"`
	}
	if json.Unmarshal(payload, &r) == nil {
		if r.Coalesced {
			w.coalesced.Add(1)
		}
		if r.MaxError > 0 && !r.Converged {
			w.notConv.Add(1)
		}
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	w.mu.Lock()
	w.lats = append(w.lats, ms)
	w.mu.Unlock()
}

// fillLatencies computes the latency summary from the recorded samples.
func fillLatencies(rec *runRecord, lats []float64) {
	if len(lats) == 0 {
		return
	}
	sorted := make([]float64, len(lats))
	copy(sorted, lats)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	rec.LatP50Ms, rec.LatP90Ms, rec.LatP99Ms = at(0.50), at(0.90), at(0.99)
	rec.LatMaxMs = sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	rec.LatMeanMs = sum / float64(len(sorted))
}

// appendRecord appends one run to the JSON array in path (creating it).
func appendRecord(path string, rec runRecord) error {
	var runs []runRecord
	if data, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(data)) > 0 {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("existing %s is not a run array: %w", path, err)
		}
	}
	runs = append(runs, rec)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
