// Command mvnserve serves MVN/MVT probability queries over HTTP/JSON — the
// production front door of the engine. It owns a sharded pool of sessions,
// coalesces concurrent requests for one uncached factorization into a single
// build, micro-batches same-factor queries into one batch call, and
// admission-controls factorizations so overload fails fast (503) instead of
// queueing without bound.
//
// Endpoints:
//
//	POST /v1/mvnprob   one MVN probability query
//	POST /v1/mvtprob   one MVT probability query (requires "nu")
//	GET  /healthz      liveness
//	GET  /stats        counters: cache hits/misses, coalesces, rejections,
//	                   queue depth, latency, store hits/saves
//
// With -store DIR the server persists every factor it builds into DIR
// (versioned, checksummed container files) and installs stored factors on
// cold keys, so a restarted server — or a new replica sharing the
// directory — serves its first query for a stored key warm, with zero
// factorizations.
//
// With -route URL1,URL2,... the process runs as a thin router instead:
// requests are placed on backends by consistent hashing on their
// ProblemKey, backends are health-checked, failed proxies retry the next
// replica, and membership changes hand off only the affected keys.
//
// Example:
//
//	mvnserve -addr :8080 -method tlr -qmc 5000 &
//	curl -s localhost:8080/v1/mvnprob -d '{
//	  "grid": {"nx": 20, "ny": 20},
//	  "kernel": {"family": "exponential", "range": 0.1},
//	  "lower": -1
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	method := flag.String("method", "dense", "default factorization method: dense, tlr or adaptive (requests may override)")
	tile := flag.Int("tile", 0, "tile size for large problems (0 = 64; small problems are bucketed automatically)")
	tol := flag.Float64("tlr-tol", 1e-4, "TLR compression accuracy")
	qmc := flag.Int("qmc", 2000, "QMC sample size")
	reps := flag.Int("reps", 1, "randomized QMC replicates per query")
	workers := flag.Int("workers", 0, "worker goroutines per session (0 = GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 0, "cached factors per session, LRU (0 = default 8, negative = unbounded)")
	shards := flag.Int("shards", 0, "session shards (0 = default 4)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch gathering window for warm queries (0 = default 1ms, negative = off)")
	maxBatch := flag.Int("max-batch", 0, "queries per batch before an early flush (0 = default 64)")
	maxFactor := flag.Int("max-factor", 0, "concurrent factorizations (0 = default 2)")
	factorQueue := flag.Int("factor-queue", 0, "cold keys that may wait for a factorization slot (0 = default 8, negative = none)")
	maxInflight := flag.Int("max-inflight", 0, "admitted requests before fast-fail (0 = default 1024)")
	maxDim := flag.Int("max-dim", 0, "maximum problem dimension (0 = default 16384)")
	degradeAt := flag.Float64("degrade-at", 0, "in-flight load fraction beyond which error budgets are loosened (0 = default 0.75, >=1 disables)")
	maxErrFloor := flag.Float64("max-error-floor", 0, "loosest relative-error budget degradation may impose at full load (0 = default 0.01)")
	storeDir := flag.String("store", "", "persistent factor store directory (load cold keys from it, write built factors through to it)")
	route := flag.String("route", "", "comma-separated backend URLs: run as a consistent-hash router over them instead of serving locally")
	healthEvery := flag.Duration("health-interval", 0, "router backend health-check period (0 = default 1s)")
	flag.Parse()

	m := parmvn.Dense
	switch *method {
	case "dense":
	case "tlr":
		m = parmvn.TLR
	case "adaptive":
		m = parmvn.MethodAdaptive
	default:
		fmt.Fprintf(os.Stderr, "mvnserve: unknown method %q\n", *method)
		os.Exit(2)
	}
	session := parmvn.Config{
		Method: m, TileSize: *tile, TLRTol: *tol,
		QMCSize: *qmc, Replicates: *reps, Workers: *workers,
		FactorCacheCap: *cacheCap,
	}

	var handler http.Handler
	var closeFn func()
	if *route != "" {
		backends := strings.Split(*route, ",")
		for i := range backends {
			backends[i] = strings.TrimSpace(backends[i])
		}
		router, err := serve.NewRouter(serve.RouterConfig{
			Backends:       backends,
			Session:        session,
			HealthInterval: *healthEvery,
			MaxDim:         *maxDim,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvnserve:", err)
			os.Exit(2)
		}
		handler = router.Handler()
		closeFn = router.Close
		fmt.Printf("mvnserve: routing on %s across %d backends\n", *addr, len(backends))
	} else {
		var store *parmvn.FactorStore
		if *storeDir != "" {
			var err error
			store, err = parmvn.OpenFactorStore(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvnserve:", err)
				os.Exit(2)
			}
		}
		srv := serve.New(serve.Config{
			Session:           session,
			Shards:            *shards,
			BatchWindow:       *batchWindow,
			MaxBatch:          *maxBatch,
			MaxInflightFactor: *maxFactor,
			FactorQueueDepth:  *factorQueue,
			MaxInFlight:       *maxInflight,
			MaxDim:            *maxDim,
			DegradeAt:         *degradeAt,
			MaxErrorFloor:     *maxErrFloor,
			Store:             store,
		})
		handler = srv.Handler()
		closeFn = srv.Close
		fmt.Printf("mvnserve: listening on %s (method %s, qmc %d)\n", *addr, *method, *qmc)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintln(os.Stderr, "mvnserve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("mvnserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		closeFn()
	}
}
