// Command reprolint statically enforces the repository's hot-path contracts:
// pool pairing (poolcheck), steady-state allocation freedom (noalloc), lock
// discipline in the serving path (locksafe) and taskrt group hygiene
// (taskdiscipline).
//
// It runs two ways:
//
//	reprolint ./...                       # standalone, loads from source
//	go vet -vettool=$(pwd)/reprolint ./...  # unitchecker protocol
//
// Standalone mode typechecks the whole dependency closure from source and
// needs nothing but the go tool. Vettool mode speaks cmd/go's unit protocol
// — a -V=full version handshake for the build cache, one vet.cfg JSON file
// per package, gc export data for imports, and vetx fact files carrying
// //repro:noalloc and //repro:returns-pooled certifications between
// packages — so results are incremental and cached like the built-in vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprolint: ")
	vFlag := flag.String("V", "", "print version and exit (the go command passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [package pattern ...]\n   or: go vet -vettool=$(command -v reprolint) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		// The output is cmd/go's cache key for vet results: mix in a hash of
		// the binary so a rebuilt reprolint invalidates stale verdicts.
		fmt.Printf("reprolint version devel buildID=%s\n", selfID())
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0])
		return
	}
	runStandalone(args)
}

// selfID hashes the executable for the -V=full handshake.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runStandalone loads the named patterns (default ./...) from source, builds
// the annotation index over the whole closure and reports diagnostics for
// the named packages.
func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := analysis.Load(".", patterns)
	if err != nil {
		log.Fatal(err)
	}
	ix := analysis.BuildIndex(fset, pkgs)
	bad := false
	for _, p := range pkgs {
		if !p.Target || p.Pkg == nil {
			continue
		}
		diags, err := analysis.RunAnalyzers(analysis.All(), fset, p.Files, p.Pkg, p.Info, ix)
		if err != nil {
			log.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// vetConfig is the vet.cfg JSON cmd/go hands the tool for one package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFacts is reprolint's fact file format: the annotation certifications a
// package exports to its dependents.
type vetxFacts struct {
	Noalloc []string          `json:"noalloc,omitempty"`
	Pooled  map[string]string `json:"pooled,omitempty"`
}

func runVetUnit(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts(cfg, analysis.NewIndex())
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data, exactly as the
	// compiler itself saw them.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := analysis.NewTypesInfo()
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(cfg, analysis.NewIndex())
			return
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Index: dependency facts first, then this package's own annotations, so
	// the written vetx is the transitive closure.
	ix := analysis.NewIndex()
	for _, vetxFile := range cfg.PackageVetx {
		fdata, err := os.ReadFile(vetxFile)
		if err != nil || len(fdata) == 0 {
			continue
		}
		var facts vetxFacts
		if json.Unmarshal(fdata, &facts) == nil {
			ix.AddFacts(facts.Noalloc, facts.Pooled)
		}
	}
	ix.AddPackage(fset, cfg.ImportPath, files)
	writeFacts(cfg, ix)

	if cfg.VetxOnly {
		return
	}
	diags, err := analysis.RunAnalyzers(analysis.All(), fset, files, pkg, info, ix)
	if err != nil {
		log.Fatalf("%s: %v", cfg.ImportPath, err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(2)
	}
}

// writeFacts persists the package's exported facts. cmd/go requires the vetx
// file to exist even when empty.
func writeFacts(cfg *vetConfig, ix *analysis.Index) {
	if cfg.VetxOutput == "" {
		return
	}
	noalloc, pooled := ix.Facts()
	out, err := json.Marshal(vetxFacts{Noalloc: noalloc, Pooled: pooled})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
		log.Fatal(err)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
