package parmvn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/factorio"
	"repro/internal/mvn"
)

// TestEvictPrefersDoneOverBuilding pins the eviction policy: when the cache
// overflows, a built (done) entry is evicted before any entry whose build is
// still in flight, even when the building entry is older — evicting a
// building entry would make concurrent FactorState observers see
// FactorAbsent and burn a second factorization slot on a build already
// running. Runs with a real blocked build so -race checks the interleaving.
func TestEvictPrefersDoneOverBuilding(t *testing.T) {
	c := newFactorCache(2)
	keyBuilding := factorKey{kind: 'k', n: 1}
	keyDone := factorKey{kind: 'k', n: 2}
	keyNew := factorKey{kind: 'k', n: 3}

	entered := make(chan struct{})
	release := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		c.getOrBuild(keyBuilding, func() (mvn.Factor, error) {
			close(entered)
			<-release
			return nil, errors.New("stub build")
		})
	}()
	<-entered // keyBuilding is now mid-build with the oldest LRU stamp

	if _, err := c.getOrBuild(keyDone, func() (mvn.Factor, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	// Inserting a third key overflows cap 2. LRU alone would evict
	// keyBuilding (oldest); the policy must pick keyDone instead.
	if _, err := c.getOrBuild(keyNew, func() (mvn.Factor, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.state(keyBuilding); st != FactorBuilding {
		t.Errorf("building entry state = %v, want FactorBuilding (was it evicted?)", st)
	}
	if st, _ := c.state(keyDone); st != FactorAbsent {
		t.Errorf("done entry state = %v, want FactorAbsent (it was the LRU-newer but done victim)", st)
	}
	close(release)
	<-finished

	// Fall-back: when every other entry is mid-build, the cap still holds —
	// the oldest building entry is evicted as a last resort.
	c2 := newFactorCache(1)
	entered2 := make(chan struct{})
	release2 := make(chan struct{})
	finished2 := make(chan struct{})
	go func() {
		defer close(finished2)
		c2.getOrBuild(keyBuilding, func() (mvn.Factor, error) {
			close(entered2)
			<-release2
			return nil, nil
		})
	}()
	<-entered2
	if _, err := c2.getOrBuild(keyNew, func() (mvn.Factor, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if st, _ := c2.state(keyBuilding); st != FactorAbsent {
		t.Errorf("all-building overflow: state = %v, want FactorAbsent (cap is a hard bound)", st)
	}
	if got := c2.Len(); got != 1 {
		t.Errorf("cache len = %d, want cap 1", got)
	}
	close(release2)
	<-finished2
}

func storeTestProblem() (locs []Point, spec KernelSpec, a, b []float64) {
	locs = Grid(5, 5)
	spec = KernelSpec{Family: "exponential", Range: 0.15}
	n := len(locs)
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 1
	}
	return locs, spec, a, b
}

// TestStoreRoundTripBitIdentical is the store's end-to-end property: for
// every factorization method, and for MVN and MVT queries alike, a session
// that loaded its factor from disk answers bit-identically to the session
// that built and saved it — the factor round-trips exactly, and the loaded
// session never factorizes.
func TestStoreRoundTripBitIdentical(t *testing.T) {
	locs, spec, a, b := storeTestProblem()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"dense", Config{Method: Dense, TileSize: 8, QMCSize: 256, Replicates: 2, Workers: 1}},
		{"tlr", Config{Method: TLR, TileSize: 8, TLRTol: 1e-6, QMCSize: 256, Replicates: 2, Workers: 1}},
		{"adaptive", Config{Method: MethodAdaptive, TileSize: 8, QMCSize: 256, Replicates: 2, Workers: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := OpenFactorStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s1 := NewSession(tc.cfg)
			defer s1.Close()
			if err := s1.SaveFactor(st, locs, spec); err != nil {
				t.Fatalf("save: %v", err)
			}
			pk, err := s1.ProblemKey(locs, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Has(pk) {
				t.Fatal("store reports no factor after SaveFactor")
			}
			mvn1, err := s1.MVNProb(locs, spec, a, b)
			if err != nil {
				t.Fatal(err)
			}
			mvt1, err := s1.MVTProb(locs, spec, 5, a, b)
			if err != nil {
				t.Fatal(err)
			}

			s2 := NewSession(tc.cfg)
			defer s2.Close()
			if err := s2.LoadFactor(st, pk); err != nil {
				t.Fatalf("load: %v", err)
			}
			if status, _ := s2.FactorState(pk); status != FactorReady {
				t.Fatalf("loaded factor state = %v, want FactorReady", status)
			}
			mvn2, err := s2.MVNProb(locs, spec, a, b)
			if err != nil {
				t.Fatal(err)
			}
			mvt2, err := s2.MVTProb(locs, spec, 5, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if mvn1.Prob != mvn2.Prob || mvn1.StdErr != mvn2.StdErr {
				t.Errorf("MVN not bit-identical: %v/%v vs %v/%v",
					mvn1.Prob, mvn1.StdErr, mvn2.Prob, mvn2.StdErr)
			}
			if mvt1.Prob != mvt2.Prob || mvt1.StdErr != mvt2.StdErr {
				t.Errorf("MVT not bit-identical: %v/%v vs %v/%v",
					mvt1.Prob, mvt1.StdErr, mvt2.Prob, mvt2.StdErr)
			}
			if _, misses := s2.Cache().Stats(); misses != 0 {
				t.Errorf("loaded session paid %d factorizations, want 0", misses)
			}
			// A second load is a no-op success (entry already resident).
			if err := s2.LoadFactor(st, pk); err != nil {
				t.Errorf("re-load over a resident factor: %v", err)
			}
		})
	}
}

// TestStoreMissAndKeyVerification checks the miss paths: an absent file is
// ErrStoreMiss, and a file whose embedded key disagrees with the requested
// problem (here: a stored factor copied under another key's file name) is a
// miss too — never an installed wrong factor.
func TestStoreMissAndKeyVerification(t *testing.T) {
	locs, spec, _, _ := storeTestProblem()
	cfg := Config{TileSize: 8, QMCSize: 200, Workers: 1}
	st, err := OpenFactorStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(cfg)
	defer s.Close()

	pk, err := s.ProblemKey(locs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadFactor(st, pk); !errors.Is(err, ErrStoreMiss) {
		t.Fatalf("load from empty store: %v, want ErrStoreMiss", err)
	}
	if err := s.SaveFactor(st, locs, spec); err != nil {
		t.Fatal(err)
	}

	// Copy the stored container under the file name of a different problem:
	// the embedded key must be caught on load.
	other := KernelSpec{Family: "exponential", Range: 0.33}
	pkOther, err := s.ProblemKey(locs, other)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.path(pk))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(pkOther), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(cfg)
	defer s2.Close()
	if err := s2.LoadFactor(st, pkOther); !errors.Is(err, ErrStoreMiss) {
		t.Fatalf("load with mismatched embedded key: %v, want ErrStoreMiss", err)
	}
	if status, _ := s2.FactorState(pkOther); status != FactorAbsent {
		t.Error("mismatched factor was installed")
	}
}

// TestStoreCorruption truncates and corrupts stored files: loads surface
// the typed factorio errors and never install a factor.
func TestStoreCorruption(t *testing.T) {
	locs, spec, _, _ := storeTestProblem()
	cfg := Config{TileSize: 8, QMCSize: 200, Workers: 1}
	st, err := OpenFactorStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(cfg)
	defer s.Close()
	if err := s.SaveFactor(st, locs, spec); err != nil {
		t.Fatal(err)
	}
	pk, err := s.ProblemKey(locs, spec)
	if err != nil {
		t.Fatal(err)
	}
	path := st.path(pk)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Session { return NewSession(cfg) }

	// Truncation mid-file.
	if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := fresh()
	if err := s2.LoadFactor(st, pk); !errors.Is(err, factorio.ErrFormat) {
		t.Errorf("truncated file: %v, want ErrFormat", err)
	}
	s2.Close()

	// One flipped payload byte.
	mut := make([]byte, len(orig))
	copy(mut, orig)
	mut[len(mut)/2] ^= 0x10
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := fresh()
	if err := s3.LoadFactor(st, pk); !errors.Is(err, factorio.ErrChecksum) {
		t.Errorf("flipped byte: %v, want ErrChecksum", err)
	}
	s3.Close()

	// Future container version.
	fut := make([]byte, len(orig))
	copy(fut, orig)
	fut[8]++
	if err := os.WriteFile(path, fut, 0o644); err != nil {
		t.Fatal(err)
	}
	s4 := fresh()
	if err := s4.LoadFactor(st, pk); !errors.Is(err, factorio.ErrVersion) {
		t.Errorf("future version: %v, want ErrVersion", err)
	}
	if status, _ := s4.FactorState(pk); status != FactorAbsent {
		t.Error("corrupt factor was installed")
	}
	s4.Close()
}

// TestWarmFromStore saves several factors and warms fresh sessions from the
// directory: a matching configuration installs them all, a mismatched one
// installs none, and a damaged file is skipped (reported, not fatal).
func TestWarmFromStore(t *testing.T) {
	locs, _, a, b := storeTestProblem()
	cfg := Config{TileSize: 8, QMCSize: 200, Workers: 1}
	st, err := OpenFactorStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []KernelSpec{
		{Family: "exponential", Range: 0.1},
		{Family: "exponential", Range: 0.25},
	}
	s := NewSession(cfg)
	defer s.Close()
	for _, spec := range specs {
		if err := s.SaveFactor(st, locs, spec); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := st.Len(); err != nil || n != 2 {
		t.Fatalf("store len = %d (%v), want 2", n, err)
	}

	warm := NewSession(cfg)
	defer warm.Close()
	n, err := warm.WarmFromStore(st)
	if err != nil || n != 2 {
		t.Fatalf("warm install = %d (%v), want 2", n, err)
	}
	for _, spec := range specs {
		if _, err := warm.MVNProb(locs, spec, a, b); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := warm.Cache().Stats(); hits != 2 || misses != 0 {
		t.Errorf("warmed session hits/misses = %d/%d, want 2/0", hits, misses)
	}

	// A session whose configuration keys problems differently installs
	// nothing: the stored factors were not built for it.
	cold := NewSession(Config{TileSize: 8, QMCSize: 200, Workers: 1, Method: TLR, TLRTol: 1e-5})
	defer cold.Close()
	if n, err := cold.WarmFromStore(st); err != nil || n != 0 {
		t.Errorf("mismatched config installed %d (%v), want 0", n, err)
	}

	// A damaged file is skipped and reported without losing the good ones.
	if err := os.WriteFile(filepath.Join(st.Dir(), "deadbeef00000000.fac"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm2 := NewSession(cfg)
	defer warm2.Close()
	n, err = warm2.WarmFromStore(st)
	if n != 2 {
		t.Errorf("warm with damaged file installed %d, want 2", n)
	}
	if err == nil {
		t.Error("damaged file was not reported")
	}
}

// TestFactorKeyBlobRoundTrip checks the key serialization: decode(encode)
// is the identity, so the on-disk key identity check is exact.
func TestFactorKeyBlobRoundTrip(t *testing.T) {
	k := factorKey{
		kind:    'k',
		hash:    [2]uint64{0x0123456789abcdef, 0xfedcba9876543210},
		n:       400,
		kernel:  KernelSpec{Family: "matern", Sigma2: 1.5, Range: 0.2, Nu: 2.5, Nugget: 1e-8},
		method:  MethodAdaptive,
		tile:    64,
		tol:     1e-7,
		maxRank: 48,
		band:    2, rankFrac: 0.25, f32Cut: 0.5,
	}
	got, err := decodeFactorKey(encodeFactorKey(k))
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Errorf("round trip changed the key:\n got %+v\nwant %+v", got, k)
	}
	if _, err := decodeFactorKey(encodeFactorKey(k)[:10]); err == nil {
		t.Error("truncated key blob decoded successfully")
	}
	bad := encodeFactorKey(k)
	bad[0] = keyBlobVersion + 1
	if _, err := decodeFactorKey(bad); err == nil {
		t.Error("future key blob version decoded successfully")
	}
}
