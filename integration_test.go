package parmvn

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestEndToEndWorkflow drives the full public API the way the paper's
// application does: build a posterior from observations (eqs. 7–8), detect
// the confidence region with both factorization methods, compare them, and
// capture an execution trace — one test standing in for a user session.
func TestEndToEndWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end workflow is heavy")
	}
	const side = 12
	locs := Grid(side, side)
	n := len(locs)
	kernel := KernelSpec{Family: "exponential", Range: 0.2}
	sigma := CovarianceMatrix(locs, kernel)

	// Observations: the west half is high.
	var obsIdx []int
	var y []float64
	for i, p := range locs {
		if i%3 == 0 {
			obsIdx = append(obsIdx, i)
			y = append(y, 1.5-3*p.X)
		}
	}
	mu := make([]float64, n)
	postCov, postMu, err := Posterior(sigma, mu, obsIdx, y, 0.25)
	if err != nil {
		t.Fatal(err)
	}

	regions := map[Method][]int{}
	for _, method := range []Method{Dense, TLR} {
		s := NewSession(Config{Method: method, TileSize: 36, QMCSize: 3000, TLRTol: 1e-5})
		s.EnableTracing()
		exc, err := s.DetectRegionCov(postCov, postMu, 0.0, 0.9, 12)
		if err != nil {
			s.Close()
			t.Fatalf("%v: %v", method, err)
		}
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			s.Close()
			t.Fatal(err)
		}
		s.Close()
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%v: bad trace: %v", method, err)
		}
		if len(events) == 0 {
			t.Errorf("%v: empty execution trace", method)
		}
		regions[method] = exc.Region

		// The detected region must favor the observed-high west.
		for _, loc := range exc.Region {
			if locs[loc].X > 0.75 {
				t.Errorf("%v: eastern location %d in region", method, loc)
			}
		}
		if len(exc.Region) == 0 {
			t.Errorf("%v: empty region", method)
		}
	}
	// Dense and TLR agree almost exactly at 1e-5 compression.
	d, tl := regions[Dense], regions[TLR]
	if math.Abs(float64(len(d)-len(tl))) > 2 {
		t.Errorf("region sizes diverge: dense %d vs TLR %d", len(d), len(tl))
	}
}

// TestSessionReuse runs several different computations through one session
// to verify the runtime can be reused across phases.
func TestSessionReuse(t *testing.T) {
	s := NewSession(Config{TileSize: 16, QMCSize: 800})
	defer s.Close()
	locs := Grid(6, 6)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = -2, 2
	}
	k := KernelSpec{Range: 0.15}
	r1, err := s.MVNProb(locs, k, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.MVTProb(locs, k, 5, a, b)
	if err != nil {
		t.Fatal(err)
	}
	mean := make([]float64, n)
	for i := range mean {
		mean[i] = 1 - 2*locs[i].X
	}
	exc, err := s.DetectRegion(locs, k, mean, 0, 0.8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Prob <= 0 || r1.Prob > 1 || r2.Prob <= 0 || r2.Prob > 1 {
		t.Errorf("implausible probabilities %v %v", r1.Prob, r2.Prob)
	}
	if len(exc.F) != n {
		t.Errorf("confidence function length %d", len(exc.F))
	}
}
