package parmvn

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestGridHelper(t *testing.T) {
	locs := Grid(4, 3)
	if len(locs) != 12 {
		t.Fatalf("len = %d", len(locs))
	}
	if locs[0] != (Point{0, 0}) || locs[11] != (Point{1, 1}) {
		t.Errorf("corners wrong: %v %v", locs[0], locs[11])
	}
}

func TestMVNProbIndependentLimit(t *testing.T) {
	// A very short range makes the field effectively independent, so the
	// probability approaches the product of univariate probabilities.
	s := NewSession(Config{QMCSize: 500, TileSize: 8})
	defer s.Close()
	locs := Grid(4, 4)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -1
		b[i] = 1
	}
	res, err := s.MVNProb(locs, KernelSpec{Family: "exponential", Range: 1e-6}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(stats.Phi(1)-stats.Phi(-1), float64(n))
	if math.Abs(res.Prob-want) > 1e-6 {
		t.Errorf("prob %v, want %v", res.Prob, want)
	}
}

func TestMVNProbDenseVsTLR(t *testing.T) {
	locs := Grid(8, 8)
	n := len(locs)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = -0.5
		b[i] = math.Inf(1)
	}
	kernel := KernelSpec{Family: "matern", Range: 0.15, Nu: 1.5}
	var probs []float64
	for _, m := range []Method{Dense, TLR} {
		s := NewSession(Config{Method: m, QMCSize: 3000, TileSize: 16, TLRTol: 1e-8, TLRMaxRank: -1})
		res, err := s.MVNProb(locs, kernel, a, b)
		s.Close()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		probs = append(probs, res.Prob)
	}
	if d := math.Abs(probs[0] - probs[1]); d > 1e-5 {
		t.Errorf("dense %v vs TLR %v differ by %v", probs[0], probs[1], d)
	}
}

func TestMVNProbCov(t *testing.T) {
	// 2×2 with known orthant probability.
	rho := 0.5
	sigma := [][]float64{{1, rho}, {rho, 1}}
	s := NewSession(Config{QMCSize: 20000, TileSize: 2})
	defer s.Close()
	res, err := s.MVNProbCov(sigma, []float64{math.Inf(-1), math.Inf(-1)}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 + math.Asin(rho)/(2*math.Pi)
	if math.Abs(res.Prob-want) > 2e-3 {
		t.Errorf("orthant %v, want %v", res.Prob, want)
	}
}

func TestMVNProbErrors(t *testing.T) {
	s := NewSession(Config{})
	defer s.Close()
	if _, err := s.MVNProb(Grid(2, 2), KernelSpec{Range: -1}, nil, nil); err == nil {
		t.Error("want error for bad kernel")
	}
	if _, err := s.MVNProb(Grid(2, 2), KernelSpec{Range: 0.1}, []float64{0}, []float64{1}); err == nil {
		t.Error("want error for limit length mismatch")
	}
	if _, err := s.MVNProbCov([][]float64{{1, 0}}, []float64{0}, []float64{1}); err == nil {
		t.Error("want error for ragged covariance")
	}
	if _, err := s.MVNProb(Grid(2, 2), KernelSpec{Family: "cubic", Range: 1}, make([]float64, 4), make([]float64, 4)); err == nil {
		t.Error("want error for unknown family")
	}
}

func TestMVTProbUnivariateExact(t *testing.T) {
	// Single location: T(−∞, t; 1, ν) is the Student-t CDF.
	s := NewSession(Config{QMCSize: 20000, TileSize: 1})
	defer s.Close()
	locs := []Point{{0.5, 0.5}}
	for _, nu := range []float64{1, 4} {
		res, err := s.MVTProb(locs, KernelSpec{Range: 0.1}, nu, []float64{math.Inf(-1)}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		want := stats.StudentTCDF(1, nu)
		if math.Abs(res.Prob-want) > 3e-3 {
			t.Errorf("ν=%v: %v, want %v", nu, res.Prob, want)
		}
	}
	if _, err := s.MVTProb(locs, KernelSpec{Range: 0.1}, -1, []float64{0}, []float64{1}); err == nil {
		t.Error("want error for negative dof")
	}
}

func TestDetectRegionEndToEnd(t *testing.T) {
	s := NewSession(Config{QMCSize: 2000, TileSize: 16})
	defer s.Close()
	locs := Grid(6, 6)
	n := len(locs)
	mean := make([]float64, n)
	for i, p := range locs {
		mean[i] = 2 - 4*p.X // strongly positive west half, negative east
	}
	exc, err := s.DetectRegion(locs, KernelSpec{Range: 0.2}, mean, 0.0, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(exc.Region) == 0 {
		t.Fatal("empty region despite high western means")
	}
	// All detected locations should have high marginal probability.
	for _, i := range exc.Region {
		if exc.Marginal[i] < 0.5 {
			t.Errorf("region contains low-marginal location %d (%v)", i, exc.Marginal[i])
		}
	}
	// The region must favour the west (low x).
	mask := exc.InRegion(n)
	for i, p := range locs {
		if mask[i] && p.X > 0.9 {
			t.Errorf("eastern location %d in region", i)
		}
	}
	if len(exc.F) != n || len(exc.Order) != n {
		t.Errorf("confidence function sizes %d,%d", len(exc.F), len(exc.Order))
	}
}

func TestDetectRegionValidatesInput(t *testing.T) {
	s := NewSession(Config{})
	defer s.Close()
	locs := Grid(3, 3)
	if _, err := s.DetectRegion(locs, KernelSpec{Range: 0.1}, make([]float64, 2), 0, 0.9, 5); err == nil {
		t.Error("want error for mean length mismatch")
	}
	if _, err := s.DetectRegion(locs, KernelSpec{Range: 0.1}, make([]float64, 9), 0, 1.5, 5); err == nil {
		t.Error("want error for confidence outside (0,1)")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewSession(Config{})
	defer s.Close()
	c := s.Config()
	if c.TileSize != 64 || c.QMCSize != 2000 || c.TLRTol != 1e-6 || c.TLRMaxRank != 32 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	s2 := NewSession(Config{TLRMaxRank: -1})
	defer s2.Close()
	if s2.Config().TLRMaxRank != 0 {
		t.Errorf("negative max rank should mean uncapped, got %d", s2.Config().TLRMaxRank)
	}
}

func TestMethodString(t *testing.T) {
	if Dense.String() != "dense" || TLR.String() != "tlr" {
		t.Error("Method.String wrong")
	}
}

func TestPhiRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.5, 0.975} {
		if got := Phi(PhiInv(p)); math.Abs(got-p) > 1e-12 {
			t.Errorf("Phi(PhiInv(%v)) = %v", p, got)
		}
	}
}
