// Package parmvn is the public facade of the parallel high-dimensional
// multivariate normal (MVN) probability library, a from-scratch Go
// reproduction of "Parallel Approximations for High-Dimensional
// Multivariate Normal Probability Computation in Confidence Region
// Detection Applications" (IPDPS 2024).
//
// The package computes Φn(a,b;0,Σ) with the tiled, task-parallel
// Separation-of-Variables algorithm — with either a dense or a Tile
// Low-Rank (TLR) Cholesky factorization of Σ — and applies it to
// confidence-region (excursion-set) detection on Gaussian random fields.
//
// Typical use:
//
//	s := parmvn.NewSession(parmvn.Config{Method: parmvn.TLR})
//	defer s.Close()
//	res, err := s.MVNProb(locs, kernel, a, b)
//
// The heavy lifting lives in the internal packages (linalg, tlr, taskrt,
// mvn, excursion); this facade wires them together behind a small surface.
package parmvn

import (
	"context"
	"fmt"
	"io"
	"repro/internal/stats"
	"runtime"
	"time"

	"repro/internal/cov"
	"repro/internal/engine"
	"repro/internal/excursion"
	"repro/internal/geo"
	"repro/internal/linalg"
	"repro/internal/mvn"
	"repro/internal/taskrt"
	"repro/internal/tile"
	"repro/internal/tiledalg"
	"repro/internal/tlr"
)

// Method selects how the Cholesky factorization of the covariance matrix is
// computed and stored.
type Method int

// Factorization methods.
const (
	// Dense uses the tiled dense Cholesky (the paper's Chameleon path).
	Dense Method = iota
	// TLR compresses off-diagonal tiles to low rank (the HiCMA path),
	// trading a user-chosen accuracy for large speedups.
	TLR
	// MethodAdaptive chooses every tile's representation individually: dense
	// float64 on the diagonal band, low rank where the tile compresses at
	// TLRTol, dense float32 for small incompressible tiles — the per-tile
	// policy runs on the unified factorization engine. Thresholds come from
	// AdaptiveBand, AdaptiveRankFrac and AdaptiveF32Norm.
	MethodAdaptive
)

// String returns "dense", "tlr" or "adaptive".
func (m Method) String() string {
	switch m {
	case TLR:
		return "tlr"
	case MethodAdaptive:
		return "adaptive"
	default:
		return "dense"
	}
}

// Point is a spatial location.
type Point struct {
	X, Y float64
}

// Grid returns an nx×ny regular grid of locations on the unit square.
func Grid(nx, ny int) []Point {
	g := geo.RegularGrid(nx, ny)
	out := make([]Point, g.Len())
	for i, p := range g.Pts {
		out[i] = Point{p.X, p.Y}
	}
	return out
}

// KernelSpec selects a stationary covariance kernel.
type KernelSpec struct {
	// Family is "exponential", "matern" or "powexp".
	Family string
	// Sigma2 is the marginal variance σ² (default 1).
	Sigma2 float64
	// Range is the spatial range parameter a.
	Range float64
	// Nu is the Matérn smoothness (matern) or the exponent (powexp).
	Nu float64
	// Nugget adds white noise τ² on the diagonal.
	Nugget float64
}

// normalized returns the spec with defaults applied and family-irrelevant
// fields zeroed, so that specs building identical kernels compare equal.
// build derives the kernel from this form and the factor-cache key uses it,
// which keeps the two definitionally consistent.
//repro:noalloc
func (k KernelSpec) normalized() KernelSpec {
	if k.Family == "" {
		k.Family = "exponential"
	}
	if k.Sigma2 == 0 {
		k.Sigma2 = 1
	}
	if k.Family == "exponential" {
		k.Nu = 0
	}
	if k.Nugget <= 0 {
		k.Nugget = 0
	}
	return k
}

// Validate rejects malformed specs without constructing anything, with
// exactly the acceptance rules of the query entry points — exported so
// serving layers can fail a bad request before any routing or aggregation.
func (k KernelSpec) Validate() error { return k.validate() }

// validate rejects malformed specs without constructing anything — the
// warm-query path calls it before touching the factor cache, so invalid
// specs neither allocate nor occupy (and evict from) the bounded cache.
//repro:noalloc
func (k KernelSpec) validate() error {
	k = k.normalized()
	if k.Range <= 0 {
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: kernel range must be positive, got %g", k.Range)
	}
	switch k.Family {
	case "exponential":
	case "matern":
		if k.Nu <= 0 {
			//repro:alloc-ok rejection path
			return fmt.Errorf("parmvn: matern needs Nu > 0")
		}
	case "powexp":
		if k.Nu <= 0 || k.Nu > 2 {
			//repro:alloc-ok rejection path
			return fmt.Errorf("parmvn: powexp needs 0 < Nu ≤ 2")
		}
	default:
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: unknown kernel family %q", k.Family)
	}
	return nil
}

func (k KernelSpec) build() (cov.Kernel, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	k = k.normalized()
	var base cov.Kernel
	switch k.Family {
	case "exponential":
		base = &cov.Exponential{Sigma2: k.Sigma2, Range: k.Range}
	case "matern":
		base = cov.NewMatern(k.Sigma2, k.Range, k.Nu)
	case "powexp":
		base = &cov.PoweredExponential{Sigma2: k.Sigma2, Range: k.Range, Power: k.Nu}
	default:
		// validate and this switch must enumerate the same families.
		panic(fmt.Sprintf("parmvn: family %q passed validate but has no constructor", k.Family))
	}
	if k.Nugget > 0 {
		base = &cov.Nugget{Kernel: base, Tau2: k.Nugget}
	}
	return base, nil
}

// Config tunes a Session.
type Config struct {
	// Method selects Dense or TLR factorization.
	Method Method
	// Workers is the worker-goroutine count (default GOMAXPROCS).
	Workers int
	// TileSize is the tile size (default 64).
	TileSize int
	// TLRTol is the TLR compression accuracy ε (default 1e-6).
	TLRTol float64
	// TLRMaxRank caps per-tile ranks (default TileSize/2; 0 keeps the
	// default, negative means uncapped).
	TLRMaxRank int
	// QMCSize is the QMC sample size N (default 2000).
	QMCSize int
	// Replicates is the number of randomized QMC replicates used for error
	// estimates (default 1).
	Replicates int
	// NoFactorCache disables the session factor cache, re-assembling and
	// re-factorizing Σ on every query (the pre-batching behavior; useful as
	// a benchmarking baseline).
	NoFactorCache bool
	// FactorCacheCap bounds how many Cholesky factors the session keeps
	// (LRU eviction; each dense factor is O(n²) memory). Default 8; 0
	// keeps the default, negative means unbounded.
	FactorCacheCap int
	// SequentialBatch evaluates batched queries (and the repeated prefix
	// probabilities of DetectRegion) one after another instead of fanning
	// them out across the runtime — a debugging / baseline knob.
	SequentialBatch bool
	// AdaptiveBand is the number of sub-diagonals MethodAdaptive keeps in
	// dense float64 (default 1).
	AdaptiveBand int
	// AdaptiveRankFrac makes MethodAdaptive store an off-band tile low-rank
	// when its compressed rank at TLRTol is at most this fraction of the
	// tile size (default 0.5) — beyond that the factors outweigh the tile.
	AdaptiveRankFrac float64
	// AdaptiveF32Norm makes MethodAdaptive store an incompressible off-band
	// tile in float32 when its Frobenius norm, relative to its diagonal
	// blocks', is at most this threshold (default 0.1), keeping the f32
	// rounding commensurate with TLRTol.
	AdaptiveF32Norm float64
	// StreamWindow bounds the factorization task graph to roughly this many
	// panels of submission lookahead when a factor is built directly from a
	// kernel (streaming assembly): in-flight task descriptors stay
	// O(StreamWindow·NT²) instead of O(NT³). 0 keeps the default (2);
	// negative submits the whole graph eagerly (the pre-streaming behavior).
	StreamWindow int
	// NoEviction disables right-looking compression eviction for
	// kernel-built TLR/adaptive factors: by default a trailing dense tile is
	// compressed to low rank at TLRTol as soon as its last Schur update
	// lands, shrinking the live footprint at large n.
	NoEviction bool
	// CollectStats attaches a snapshot of the runtime scheduler statistics
	// (tasks executed per kind, peak ready-queue depth) to each Result.
	CollectStats bool
	// SweepF32 runs the QMC sweep's conditioning state (the Y grid and its
	// GEMM/axpy propagation) in float32, halving the sweep's memory traffic
	// and using the 16-lane f32 micro-kernel; special functions and
	// probability accumulation stay float64, so estimates differ from the
	// default sweep by well under the QMC error bar. The cached Cholesky
	// factor stays float64 and is shared with f64 queries; its f32 shadow is
	// built once per factor on first use.
	SweepF32 bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TileSize <= 0 {
		c.TileSize = 64
	}
	if c.TLRTol <= 0 {
		c.TLRTol = 1e-6
	}
	switch {
	case c.TLRMaxRank == 0:
		c.TLRMaxRank = c.TileSize / 2
	case c.TLRMaxRank < 0:
		c.TLRMaxRank = 0 // uncapped
	}
	if c.QMCSize <= 0 {
		c.QMCSize = 2000
	}
	if c.Replicates <= 0 {
		c.Replicates = 1
	}
	switch {
	case c.FactorCacheCap == 0:
		c.FactorCacheCap = 8
	case c.FactorCacheCap < 0:
		c.FactorCacheCap = 0 // unbounded
	}
	switch {
	case c.StreamWindow == 0:
		c.StreamWindow = 2
	case c.StreamWindow < 0:
		c.StreamWindow = 0 // eager submission
	}
	// The engine's policy owns the adaptive defaults; Tol is already
	// defaulted above through TLRTol.
	pol := engine.Policy{
		Band: c.AdaptiveBand, Tol: c.TLRTol,
		RankFrac: c.AdaptiveRankFrac, F32Norm: c.AdaptiveF32Norm,
	}.WithDefaults()
	c.AdaptiveBand = pol.Band
	c.AdaptiveRankFrac = pol.RankFrac
	c.AdaptiveF32Norm = pol.F32Norm
	return c
}

// Result is a probability estimate with its randomized-QMC standard error
// (zero unless Replicates ≥ 2 or the query set an accuracy/latency budget).
type Result struct {
	Prob   float64
	StdErr float64
	// RelErr is the achieved relative-error estimate StdErr/|Prob| (0 when
	// no replicate spread was computed, +Inf for a zero estimate with
	// nonzero spread).
	RelErr float64
	// Samples is the total number of QMC samples evaluated across all
	// replicates — under early stopping, the cost actually paid.
	Samples int
	// Converged reports that early stopping met the requested MaxRelErr; a
	// false value on a budgeted query means the estimate was capped by the
	// sample budget, the deadline or cancellation.
	Converged bool
	// Canceled reports that the query's context was canceled
	// mid-integration; Prob/StdErr still hold the partial estimate from the
	// waves that completed.
	Canceled bool
	// Stats, populated only when Config.CollectStats is set, is a snapshot
	// of the session runtime's cumulative scheduler statistics taken when
	// the query's batch completed (shared across the batch's results).
	Stats *taskrt.Stats
}

// QueryOpts are per-query accuracy/latency budgets. The zero value means
// unconstrained: the query runs the session's fixed QMCSize integration,
// bit-identical to the path without opts. Setting any budget routes the
// query through the wave-structured early-stopping integration (see
// internal/mvn): samples accrue in incremental replicate-stratified waves
// and the query stops at the first wave boundary where the accuracy target
// is met or a budget is exhausted, reporting the achieved error and the
// samples actually paid.
type QueryOpts struct {
	// MaxRelErr > 0 stops the integration once the streaming relative-error
	// estimate drops to this target. Config.QMCSize becomes the TOTAL
	// sample budget across replicates, so an unreachable target never costs
	// more than the unconstrained query.
	MaxRelErr float64
	// Budget caps the query's wall clock, measured from when its
	// integration starts. At least one wave always runs, so a blown budget
	// still yields an estimate with an error bar.
	Budget time.Duration
	// Deadline is an absolute wall-clock cap; when set it takes precedence
	// over Budget. Serving layers that admit a request at one time and
	// start integrating later use this form.
	Deadline time.Time
	// WaveSize is the number of samples appended per replicate per wave
	// (rounded up to whole lane blocks). Default: one lane block.
	WaveSize int
	// Ctx, when non-nil, is checked between waves: on cancellation the
	// query returns the partial estimate with its error bar and the
	// Canceled flag.
	Ctx context.Context
}

// apply resolves the per-query budgets onto the session's base options.
//repro:noalloc
func (q QueryOpts) apply(o mvn.Options) mvn.Options {
	o.MaxRelErr = q.MaxRelErr
	o.WaveSize = q.WaveSize
	o.Ctx = q.Ctx
	o.Deadline = q.Deadline
	if o.Deadline.IsZero() && q.Budget > 0 {
		o.Deadline = time.Now().Add(q.Budget)
	}
	return o
}

// Session owns a task-runtime worker pool, a configuration and a factor
// cache. Computations on one session may run concurrently from multiple
// goroutines: each query's task graph lives in its own runtime group and the
// factor cache serializes factorization per covariance.
type Session struct {
	cfg   Config
	rt    *taskrt.Runtime
	cache *FactorCache
}

// NewSession starts a session with the given configuration.
func NewSession(cfg Config) *Session {
	c := cfg.withDefaults()
	return &Session{cfg: c, rt: taskrt.New(c.Workers), cache: newFactorCache(c.FactorCacheCap)}
}

// Cache exposes the session's factor cache (hit/miss statistics, purging).
func (s *Session) Cache() *FactorCache { return s.cache }

// ShareCache redirects s's factor lookups to peer's cache, so sessions
// whose configurations differ only in knobs outside the factor key (e.g.
// SweepF32) reuse one set of Cholesky factors instead of each building its
// own. Must be called before s serves its first query.
func (s *Session) ShareCache(peer *Session) { s.cache = peer.cache }

// Config returns the session's effective (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// Close shuts down the worker pool.
func (s *Session) Close() { s.rt.Shutdown() }

// EnableTracing starts recording one event per executed runtime task;
// retrieve the Chrome trace with WriteTrace.
func (s *Session) EnableTracing() { s.rt.EnableTracing() }

// WriteTrace writes the recorded task execution as Chrome trace-event JSON
// (viewable in chrome://tracing or Perfetto).
func (s *Session) WriteTrace(w io.Writer) error { return s.rt.WriteTrace(w) }

func toGeom(locs []Point) *geo.Geom {
	g := &geo.Geom{Pts: make([]geo.Point, len(locs))}
	for i, p := range locs {
		g.Pts[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return g
}

func denseFromRows(sigma [][]float64) (*linalg.Matrix, error) {
	n := len(sigma)
	m := linalg.NewMatrix(n, n)
	for i, row := range sigma {
		if len(row) != n {
			return nil, fmt.Errorf("parmvn: covariance row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// policy assembles the engine policy from the session configuration.
func (s *Session) policy() engine.Policy {
	return engine.Policy{
		Band:     s.cfg.AdaptiveBand,
		Tol:      s.cfg.TLRTol,
		MaxRank:  s.cfg.TLRMaxRank,
		RankFrac: s.cfg.AdaptiveRankFrac,
		F32Norm:  s.cfg.AdaptiveF32Norm,
	}
}

// factorize builds the Cholesky factor of an explicit sigma according to the
// session method and wraps it as an mvn.Factor. All three methods route
// through the unified factorization engine — they differ only in the tile
// layout they construct. Assembly/compression fans out tile-by-tile and the
// factorization task graph runs in its own runtime group, so concurrent
// queries never wait on each other's barriers.
func (s *Session) factorize(sigma *linalg.Matrix) (mvn.Factor, error) {
	g := s.rt.NewGroup()
	switch s.cfg.Method {
	case TLR:
		a, err := tlr.CompressSPDPar(g, tile.FromDense(sigma, s.cfg.TileSize), s.cfg.TLRTol, s.cfg.TLRMaxRank)
		if err != nil {
			return nil, err
		}
		if err := tlr.Potrf(g, a); err != nil {
			return nil, err
		}
		return mvn.NewTLRFactor(a), nil
	case MethodAdaptive:
		grid := engine.AssembleAdaptive(g, tile.FromDense(sigma, s.cfg.TileSize), s.policy())
		if err := engine.Potrf(g, grid, engine.Config{Tol: s.cfg.TLRTol, MaxRank: s.cfg.TLRMaxRank}); err != nil {
			return nil, err
		}
		return mvn.NewGridFactor(grid), nil
	default:
		t := tile.FromDense(sigma, s.cfg.TileSize)
		if err := tiledalg.Potrf(g, t); err != nil {
			return nil, err
		}
		return mvn.NewDenseFactor(t), nil
	}
}

// factorizeKernel builds the Cholesky factor directly from a kernel over a
// geometry, never materializing the dense covariance: every tile is
// assembled by its own task fused into the factorization graph
// (engine.PotrfStream) in the representation the method's policy chooses —
// dense blocks for the dense layout and the band, ACA low rank off the
// band (O(rank·ts) kernel evaluations per tile), the adaptive f32/f64
// fallback where probing rejects. Submission is windowed (StreamWindow) and
// trailing TLR/adaptive tiles compress as soon as their last Schur update
// lands (unless NoEviction), so the live footprint at large n is the dense
// band plus the compressed factor. This is the cold-query hot path behind
// MVNProb/MVTProb.
func (s *Session) factorizeKernel(g *geo.Geom, k cov.Kernel) (mvn.Factor, error) {
	grp := s.rt.NewGroup()
	n := g.Len()
	ts := s.cfg.TileSize
	grid, err := engine.NewGridChecked(n, ts)
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Tol:     s.cfg.TLRTol,
		MaxRank: s.cfg.TLRMaxRank,
		Band:    s.cfg.AdaptiveBand,
		Evict:   !s.cfg.NoEviction,
		Window:  s.cfg.StreamWindow,
	}
	var asm *engine.Assembler
	switch s.cfg.Method {
	case TLR:
		asm = tlr.KernelAssembler(grid, g, k, s.cfg.TLRTol, s.cfg.TLRMaxRank)
	case MethodAdaptive:
		asm = s.policy().EntryAssembler(grid, func(i, j int) float64 {
			if i == j {
				return k.Cov(0)
			}
			return k.Cov(g.Dist(i, j))
		})
	default:
		// The dense layout is the exact reference: no eviction, every tile
		// evaluated densely (cov.Block semantics), factored by the same
		// engine graph tiledalg routes through.
		cfg.Evict = false
		asm = engine.DenseEntryAssembler(grid, func(i, j int) float64 {
			if i == j {
				return k.Cov(0)
			}
			return k.Cov(g.Dist(i, j))
		})
	}
	if err := engine.PotrfStream(grp, grid, cfg, asm); err != nil {
		return nil, err
	}
	return mvn.NewGridFactor(grid), nil
}

// validateTileSize checks the configured tile size against the problem
// dimension, uniformly at every Session entry point, so a bad configuration
// fails with a clear error instead of deep inside tiling.
//repro:noalloc
func (s *Session) validateTileSize(n int) error {
	ts := s.cfg.TileSize
	if ts <= 0 {
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: TileSize must be positive, got %d", ts)
	}
	if n > 0 && ts > n {
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: TileSize %d exceeds problem dimension %d", ts, n)
	}
	return nil
}

//repro:noalloc
func (s *Session) mvnOpts() mvn.Options {
	return mvn.Options{N: s.cfg.QMCSize, Replicates: s.cfg.Replicates, SweepF32: s.cfg.SweepF32}
}

// MVNProb computes Φn(a,b;0,Σ) where Σ is assembled from the kernel at the
// given locations. Repeated queries against the same locations and kernel
// reuse the session's cached Cholesky factor, and a warm query runs
// allocation-free end to end (content hash, cache hit, pooled chain-blocked
// integration); for many queries at once prefer MVNProbBatch, which also
// parallelizes across queries. Results are identical either way.
//repro:noalloc
func (s *Session) MVNProb(locs []Point, kernel KernelSpec, a, b []float64) (Result, error) {
	return s.prob(locs, kernel, 0, a, b, QueryOpts{})
}

// MVNProbOpts is MVNProb with per-query accuracy/latency budgets: with any
// budget set the integration runs as incremental waves and stops at the
// first wave boundary where the target is met or the budget is exhausted
// (see QueryOpts). A zero opts value is exactly MVNProb. A warm budgeted
// query still runs allocation-free end to end — the wave state is pooled.
//repro:noalloc
func (s *Session) MVNProbOpts(locs []Point, kernel KernelSpec, a, b []float64, opts QueryOpts) (Result, error) {
	return s.prob(locs, kernel, 0, a, b, opts)
}

// prob is the shared direct-query path behind MVNProb (nu = 0) and MVTProb
// (nu > 0). Validation — limits, tile size, kernel spec — is identical to
// the batch entry points, and an empty box (some a[i] ≥ b[i]) returns
// probability 0 without assembling or factorizing anything.
//repro:noalloc
func (s *Session) prob(locs []Point, kernel KernelSpec, nu float64, a, b []float64, q QueryOpts) (Result, error) {
	empty, err := validateQuery(len(locs), a, b)
	if err != nil {
		return Result{}, err
	}
	if err := s.validateTileSize(len(locs)); err != nil {
		return Result{}, err
	}
	if empty {
		if err := kernel.validate(); err != nil {
			return Result{}, err
		}
		res := Result{}
		s.attachStats(&res)
		return res, nil
	}
	f, err := s.factorForKernel(locs, kernel)
	if err != nil {
		return Result{}, err
	}
	res := s.query(f, a, b, nu, q.apply(s.mvnOpts()))
	s.attachStats(&res)
	return res, nil
}

// MVNProbCov computes Φn(a,b;0,Σ) for an explicit covariance matrix given
// as rows.
func (s *Session) MVNProbCov(sigma [][]float64, a, b []float64) (Result, error) {
	res, err := s.MVNProbCovBatch(sigma, []Bounds{{A: a, B: b}})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// MVTProb computes the multivariate Student-t probability T_n(a,b;Σ,ν)
// with ν degrees of freedom, where Σ is assembled from the kernel at the
// given locations — the companion capability of the tlrmvnmvt package the
// paper builds on, on the same dense/TLR backends.
//repro:noalloc
func (s *Session) MVTProb(locs []Point, kernel KernelSpec, nu float64, a, b []float64) (Result, error) {
	if err := validateNu(nu); err != nil {
		return Result{}, err
	}
	return s.prob(locs, kernel, nu, a, b, QueryOpts{})
}

// MVTProbOpts is MVTProb with per-query accuracy/latency budgets (see
// QueryOpts and MVNProbOpts).
//repro:noalloc
func (s *Session) MVTProbOpts(locs []Point, kernel KernelSpec, nu float64, a, b []float64, opts QueryOpts) (Result, error) {
	if err := validateNu(nu); err != nil {
		return Result{}, err
	}
	return s.prob(locs, kernel, nu, a, b, opts)
}

// attachStats snapshots the runtime scheduler statistics onto a result when
// the session is configured to collect them.
//repro:noalloc
func (s *Session) attachStats(r *Result) {
	if s.cfg.CollectStats {
		//repro:alloc-ok stats snapshot is an opt-in diagnostic path
		snap := s.rt.Snapshot()
		r.Stats = &snap
	}
}

// SchedulerStats snapshots the session runtime's cumulative scheduler
// statistics: per-kind task counts and busy time, peak ready-queue depth,
// peak in-flight task descriptors, and tasks executed by work stealing.
func (s *Session) SchedulerStats() taskrt.Stats { return s.rt.Snapshot() }

// FactorFootprint describes the memory shape of a cached Cholesky factor:
// the per-representation tile counts and the payload bytes, before and
// after right-looking eviction. It backs the mvnprob -scale driver and
// capacity planning for the serving layer.
type FactorFootprint struct {
	// Dense64, Dense32 and LowRank count the factor's tiles by
	// representation; MaxRank is the largest low-rank tile rank.
	Dense64, Dense32, LowRank, MaxRank int
	// Bytes is the factor's payload in its current representations.
	Bytes int64
	// BytesAssembled is the payload as assembled, before eviction
	// compressed trailing tiles (Bytes plus the freed amount).
	BytesAssembled int64
	// TilesEvicted counts tiles eviction compressed during factorization.
	TilesEvicted int
}

// FactorFootprint builds (or fetches from the session cache) the Cholesky
// factor for the locations and kernel, and reports its representation mix
// and payload bytes. Only kernel-built factors carry a tile grid; explicit
// covariance factors are not inspectable this way.
func (s *Session) FactorFootprint(locs []Point, kernel KernelSpec) (FactorFootprint, error) {
	if err := s.validateTileSize(len(locs)); err != nil {
		return FactorFootprint{}, err
	}
	f, err := s.factorForKernel(locs, kernel)
	if err != nil {
		return FactorFootprint{}, err
	}
	gf, ok := f.(*mvn.GridFactor)
	if !ok {
		return FactorFootprint{}, fmt.Errorf("parmvn: %s factor exposes no tile-grid footprint", s.cfg.Method)
	}
	mix := gf.G.Mix()
	evicted, freed := gf.G.EvictStats()
	b := gf.G.Bytes()
	return FactorFootprint{
		Dense64: mix.Dense64, Dense32: mix.Dense32,
		LowRank: mix.LowRank, MaxRank: mix.MaxRank,
		Bytes: b, BytesAssembled: b + freed, TilesEvicted: evicted,
	}, nil
}

// Excursion is the output of confidence-region detection.
type Excursion struct {
	// Region holds the location indices inside E⁺_{u,α}.
	Region []int
	// F is the positive confidence function per location.
	F []float64
	// Marginal is the per-location marginal exceedance probability.
	Marginal []float64
	// Order is the marginal ordering (opM) the algorithm used.
	Order []int
}

// InRegion returns a boolean mask over locations.
func (e *Excursion) InRegion(n int) []bool {
	mask := make([]bool, n)
	for _, i := range e.Region {
		if i >= 0 && i < n {
			mask[i] = true
		}
	}
	return mask
}

// DetectRegion finds the confidence region where the Gaussian field with
// the given mean and covariance (from the kernel at locs) exceeds threshold
// u with joint probability at least conf = 1−α, and evaluates the
// confidence function at fPoints interpolation nodes (0 = every prefix —
// the literal Algorithm 1 loop).
func (s *Session) DetectRegion(locs []Point, kernel KernelSpec, mean []float64, u, conf float64, fPoints int) (*Excursion, error) {
	k, err := kernel.build()
	if err != nil {
		return nil, err
	}
	sigma := cov.Matrix(toGeom(locs), k)
	return s.detectSigma(sigma, mean, u, conf, fPoints)
}

// DetectRegionCov is DetectRegion with an explicit covariance matrix (e.g.
// a posterior covariance from eq. 7).
func (s *Session) DetectRegionCov(sigma [][]float64, mean []float64, u, conf float64, fPoints int) (*Excursion, error) {
	m, err := denseFromRows(sigma)
	if err != nil {
		return nil, err
	}
	return s.detectSigma(m, mean, u, conf, fPoints)
}

func (s *Session) detectSigma(sigma *linalg.Matrix, mean []float64, u, conf float64, fPoints int) (*Excursion, error) {
	n := sigma.Rows
	if len(mean) != n {
		return nil, fmt.Errorf("parmvn: mean length %d != dimension %d", len(mean), n)
	}
	if conf <= 0 || conf >= 1 {
		return nil, fmt.Errorf("parmvn: confidence %g must be in (0,1)", conf)
	}
	if err := s.validateTileSize(n); err != nil {
		return nil, err
	}
	corr, sd := excursion.CorrelationFromCovariance(sigma)
	f, err := s.factorForSigma(corr)
	if err != nil {
		return nil, err
	}
	c, err := excursion.NewComputer(s.rt, f, mean, sd, u, s.mvnOpts())
	if err != nil {
		return nil, err
	}
	c.Sequential = s.cfg.SequentialBatch
	res := c.ConfidenceFunction(fPoints)
	region := c.Region(conf)
	return &Excursion{
		Region:   region,
		F:        res.F,
		Marginal: c.MarginalProbs(),
		Order:    append([]int(nil), c.Ordering()...),
	}, nil
}

// CovarianceMatrix assembles the covariance matrix of the kernel at the
// given locations as rows, for workflows that post-process Σ before calling
// MVNProbCov or DetectRegionCov. It panics on an invalid kernel; use
// KernelSpec fields consistent with MVNProb.
func CovarianceMatrix(locs []Point, kernel KernelSpec) [][]float64 {
	k, err := kernel.build()
	if err != nil {
		panic(err)
	}
	sigma := cov.Matrix(toGeom(locs), k)
	out := make([][]float64, sigma.Rows)
	for i := range out {
		out[i] = make([]float64, sigma.Cols)
		for j := 0; j < sigma.Cols; j++ {
			out[i][j] = sigma.At(i, j)
		}
	}
	return out
}

// Posterior computes the posterior covariance and mean of a latent Gaussian
// field observed at obsIdx with i.i.d. N(0, tau2) noise (the paper's
// equations 7–8):
//
//	Σ_post = (Σ⁻¹ + (1/τ²)AᵀA)⁻¹,  µ_post = µ + (1/τ²)Σ_post·Aᵀ(y − Aµ)
//
// with A the indicator matrix of the observed locations.
func Posterior(sigma [][]float64, mu []float64, obsIdx []int, y []float64, tau2 float64) ([][]float64, []float64, error) {
	m, err := denseFromRows(sigma)
	if err != nil {
		return nil, nil, err
	}
	post, muPost, err := cov.Posterior(m, mu, obsIdx, y, tau2)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]float64, post.Rows)
	for i := range out {
		out[i] = make([]float64, post.Cols)
		for j := 0; j < post.Cols; j++ {
			out[i][j] = post.At(i, j)
		}
	}
	return out, muPost, nil
}

// Phi is the univariate standard normal distribution function, exposed for
// downstream marginal computations.
func Phi(x float64) float64 { return stats.Phi(x) }

// PhiInv is the inverse standard normal distribution function (AS241).
func PhiInv(p float64) float64 { return stats.PhiInv(p) }
