package parmvn

import (
	"errors"
	"math"
	"testing"
)

// TestValidationConsistency pins that the direct and batch entry points
// accept exactly the same inputs and reject the rest with identical errors:
// the batch path wraps the shared validateQuery error with the query index
// and nothing else. Historically the two paths validated independently and
// drifted; this test keeps them unified.
func TestValidationConsistency(t *testing.T) {
	s := NewSession(Config{TileSize: 2, QMCSize: 100})
	defer s.Close()
	locs := Grid(2, 2)
	kernel := KernelSpec{Family: "exponential", Range: 0.3}
	nan := math.NaN()

	cases := []struct {
		name string
		a, b []float64
	}{
		{"short a", []float64{0}, []float64{1, 1, 1, 1}},
		{"short b", []float64{0, 0, 0, 0}, []float64{1}},
		{"nil limits", nil, nil},
		{"nan in a", []float64{nan, 0, 0, 0}, []float64{1, 1, 1, 1}},
		{"nan in b", []float64{0, 0, 0, 0}, []float64{1, nan, 1, 1}},
	}
	for _, tc := range cases {
		_, directErr := s.MVNProb(locs, kernel, tc.a, tc.b)
		if directErr == nil {
			t.Fatalf("%s: direct path accepted invalid limits", tc.name)
		}
		_, batchErr := s.MVNProbBatch(locs, kernel, []Bounds{{A: tc.a, B: tc.b}})
		if batchErr == nil {
			t.Fatalf("%s: batch path accepted what the direct path rejects", tc.name)
		}
		// The batch error is the direct error wrapped with the query index.
		unwrapped := errors.Unwrap(batchErr)
		if unwrapped == nil || unwrapped.Error() != directErr.Error() {
			t.Fatalf("%s: batch error %q does not wrap the direct error %q", tc.name, batchErr, directErr)
		}
		_, mvtErr := s.MVTProb(locs, kernel, 5, tc.a, tc.b)
		if mvtErr == nil || mvtErr.Error() != directErr.Error() {
			t.Fatalf("%s: MVT error %q != MVN error %q", tc.name, mvtErr, directErr)
		}
		_, mvtBatchErr := s.MVTProbBatch(locs, kernel, 5, []Bounds{{A: tc.a, B: tc.b}})
		if mvtBatchErr == nil || mvtBatchErr.Error() != batchErr.Error() {
			t.Fatalf("%s: MVT batch error %q != MVN batch error %q", tc.name, mvtBatchErr, batchErr)
		}
	}

	// A multi-query batch names the offending query.
	good := Bounds{A: []float64{-1, -1, -1, -1}, B: []float64{1, 1, 1, 1}}
	bad := Bounds{A: []float64{-1}, B: []float64{1}}
	_, err := s.MVNProbBatch(locs, kernel, []Bounds{good, bad})
	if err == nil {
		t.Fatal("batch accepted a bad query behind a good one")
	}
	want := "parmvn: query 1: parmvn: limits length (1,1) != dimension 4"
	if err.Error() != want {
		t.Fatalf("batch error = %q, want %q", err, want)
	}

	// ν validation is shared between direct and batch MVT paths.
	for _, nu := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		_, direct := s.MVTProb(locs, kernel, nu, good.A, good.B)
		_, batch := s.MVTProbBatch(locs, kernel, nu, []Bounds{good})
		if direct == nil || batch == nil {
			t.Fatalf("nu=%g accepted (direct=%v batch=%v)", nu, direct, batch)
		}
		if direct.Error() != batch.Error() {
			t.Fatalf("nu=%g: direct %q != batch %q", nu, direct, batch)
		}
	}
}

// TestEmptyBoxConsistency pins the degenerate-box semantics on both paths:
// a box with some a[i] ≥ b[i] is valid, has probability exactly 0, and does
// not cost a factorization on either path.
func TestEmptyBoxConsistency(t *testing.T) {
	s := NewSession(Config{TileSize: 2, QMCSize: 100})
	defer s.Close()
	locs := Grid(2, 2)
	kernel := KernelSpec{Family: "exponential", Range: 0.3}
	a := []float64{2, -1, -1, -1}
	b := []float64{1, 1, 1, 1} // a[0] > b[0] → empty

	res, err := s.MVNProb(locs, kernel, a, b)
	if err != nil || res.Prob != 0 {
		t.Fatalf("direct empty box = (%g, %v), want (0, nil)", res.Prob, err)
	}
	batch, err := s.MVNProbBatch(locs, kernel, []Bounds{{A: a, B: b}, {A: a, B: b}})
	if err != nil || batch[0].Prob != 0 || batch[1].Prob != 0 {
		t.Fatalf("batch empty boxes = (%v, %v), want zeros", batch, err)
	}
	if _, misses := s.Cache().Stats(); misses != 0 {
		t.Fatalf("empty boxes cost %d factorizations, want 0", misses)
	}

	// Equal bounds are a measure-zero box: also exactly 0.
	eq := []float64{0, 0, 0, 0}
	res, err = s.MVNProb(locs, kernel, eq, eq)
	if err != nil || res.Prob != 0 {
		t.Fatalf("measure-zero box = (%g, %v), want (0, nil)", res.Prob, err)
	}

	// But an invalid kernel still errors, even with an empty box.
	if _, err := s.MVNProb(locs, KernelSpec{Range: -1}, a, b); err == nil {
		t.Fatal("empty box masked an invalid kernel")
	}

	// A mixed batch evaluates the live queries and zeros the empty ones,
	// identically to the direct path.
	live := Bounds{A: []float64{-1, -1, -1, -1}, B: []float64{1, 1, 1, 1}}
	mixed, err := s.MVNProbBatch(locs, kernel, []Bounds{{A: a, B: b}, live})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.MVNProb(locs, kernel, live.A, live.B)
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0].Prob != 0 || mixed[1].Prob != direct.Prob {
		t.Fatalf("mixed batch = %+v, want [0, %g]", mixed, direct.Prob)
	}
}

// TestProblemKeyAndFactorState covers the exported serving hooks: key
// equality/inequality, Config/Session agreement, and the factor state
// transitions around Prefactorize.
func TestProblemKeyAndFactorState(t *testing.T) {
	cfg := Config{TileSize: 4, QMCSize: 100, Method: TLR}
	s := NewSession(cfg)
	defer s.Close()
	locs := Grid(3, 3)
	spec := KernelSpec{Family: "exponential", Range: 0.3}

	k1, err := s.ProblemKey(locs, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Config-level and session-level keys agree (sharding can be decided
	// before any session exists).
	k2, err := cfg.ProblemKey(locs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || k1.Hash() != k2.Hash() {
		t.Fatal("Config.ProblemKey != Session.ProblemKey for the same configuration")
	}
	// Normalization: the defaulted spec shares the key.
	k3, err := s.ProblemKey(locs, KernelSpec{Family: "", Sigma2: 1, Range: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Fatal("normalized-equal specs produced different keys")
	}
	// A different kernel does not.
	k4, err := s.ProblemKey(locs, KernelSpec{Family: "exponential", Range: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Fatal("different kernels share a key")
	}
	if _, err := s.ProblemKey(locs, KernelSpec{Range: -1}); err == nil {
		t.Fatal("ProblemKey accepted an invalid spec")
	}

	if st, _ := s.FactorState(k1); st != FactorAbsent {
		t.Fatalf("state before any query = %v, want FactorAbsent", st)
	}
	if err := s.Prefactorize(locs, spec); err != nil {
		t.Fatal(err)
	}
	st, ch := s.FactorState(k1)
	if st != FactorReady || ch != nil {
		t.Fatalf("state after Prefactorize = %v (ch=%v), want FactorReady", st, ch)
	}
	// The prefactorized query is a pure cache hit.
	h0, m0 := s.Cache().Stats()
	a := make([]float64, len(locs))
	b := make([]float64, len(locs))
	for i := range a {
		a[i], b[i] = -1, 1
	}
	if _, err := s.MVNProb(locs, spec, a, b); err != nil {
		t.Fatal(err)
	}
	h1, m1 := s.Cache().Stats()
	if m1 != m0 || h1 != h0+1 {
		t.Fatalf("warm query after Prefactorize: hits %d→%d misses %d→%d, want one hit, no miss", h0, h1, m0, m1)
	}
}
