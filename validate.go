package parmvn

import (
	"fmt"
	"math"
)

// validateQuery is the one validator every query entry point — MVNProb,
// MVTProb, the batch variants and (via ValidateQuery) the serving layer —
// runs over an (a,b) integration box, so the direct and batch paths accept
// exactly the same inputs and reject the rest with identical errors.
//
// It rejects a zero-dimensional problem, mis-sized limit vectors and NaN
// limits (±Inf is the ordinary way to express half-open boxes and is fine).
// A box with a[i] ≥ b[i] somewhere is not an error: it has measure zero or
// is empty, so the query's probability is exactly 0 and the caller returns
// that without factorizing anything — empty is the report.
//repro:noalloc
func validateQuery(n int, a, b []float64) (empty bool, err error) {
	if n <= 0 {
		//repro:alloc-ok rejection path
		return false, fmt.Errorf("parmvn: empty problem (dimension %d)", n)
	}
	if len(a) != n || len(b) != n {
		//repro:alloc-ok rejection path
		return false, fmt.Errorf("parmvn: limits length (%d,%d) != dimension %d", len(a), len(b), n)
	}
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			//repro:alloc-ok rejection path
			return false, fmt.Errorf("parmvn: limit %d is NaN", i)
		}
		if a[i] >= b[i] {
			empty = true
		}
	}
	return empty, nil
}

// ValidateQuery reports whether (a,b) is a usable integration box for an
// n-dimensional query, with exactly the acceptance rules of MVNProb and the
// batch entry points. Serving layers that aggregate queries from independent
// requests into shared batch calls validate each request with it up front, so
// one malformed request is rejected alone instead of failing the whole batch.
// An empty box (some a[i] ≥ b[i]) is valid — its probability is 0.
func ValidateQuery(n int, a, b []float64) error {
	_, err := validateQuery(n, a, b)
	return err
}

// EmptyQuery reports whether a (pre-validated) box is empty — some
// a[i] ≥ b[i] — in which case its probability is exactly 0 and a serving
// layer can answer without touching (or building) the factor, just as the
// query entry points do.
func EmptyQuery(a, b []float64) bool {
	for i := range a {
		if a[i] >= b[i] {
			return true
		}
	}
	return false
}

// validateNu is the shared degrees-of-freedom check of the MVT entry points
// (NaN fails the positivity test like any non-positive value).
//repro:noalloc
func validateNu(nu float64) error {
	if !(nu > 0) || math.IsInf(nu, 1) {
		//repro:alloc-ok rejection path
		return fmt.Errorf("parmvn: degrees of freedom %g must be positive and finite", nu)
	}
	return nil
}

// validateQueries is validateQuery over a batch: it rejects the batch on the
// first malformed query (wrapping the same error the direct path returns for
// that query) and otherwise reports which queries are empty boxes, plus
// whether any query actually needs the factor.
func validateQueries(n int, queries []Bounds) (empty []bool, anyLive bool, err error) {
	empty = make([]bool, len(queries))
	for i, q := range queries {
		e, err := validateQuery(n, q.A, q.B)
		if err != nil {
			return nil, false, fmt.Errorf("parmvn: query %d: %w", i, err)
		}
		empty[i] = e
		if !e {
			anyLive = true
		}
	}
	return empty, anyLive, nil
}
